/**
 * @file
 * Block-manager invariants: demand quantization via BlockMapper, the
 * allocate/grow/release accounting, no-double-free, and freed ==
 * allocated at drain.
 */

#include <gtest/gtest.h>

#include "serving/block_manager.h"

namespace pimba {
namespace {

TEST(BlockMapper, QuantizesFixedAndPerTokenDemand)
{
    // 1 MiB of fixed state, 64 KiB per token, 16-token blocks.
    BlockMapper m = BlockMapper::make(1 << 20, 1 << 16, 16);
    EXPECT_EQ(m.blockTokens, 16u);
    EXPECT_DOUBLE_EQ(m.blockBytes, 16.0 * (1 << 16));
    EXPECT_EQ(m.fixedBlocks, 1u); // ceil(1MiB / 1MiB)
    EXPECT_EQ(m.blocksFor(0), 1u);
    EXPECT_EQ(m.blocksFor(1), 2u);
    EXPECT_EQ(m.blocksFor(16), 2u);
    EXPECT_EQ(m.blocksFor(17), 3u);
    EXPECT_EQ(m.blocksFor(160), 11u);
}

TEST(BlockMapper, PureSsmCostsOneStateBlockRegardlessOfLength)
{
    BlockMapper m = BlockMapper::make(1 << 20, 0.0, 16);
    EXPECT_EQ(m.blockTokens, 0u);
    EXPECT_DOUBLE_EQ(m.blockBytes, static_cast<double>(1 << 20));
    EXPECT_EQ(m.blocksFor(0), 1u);
    EXPECT_EQ(m.blocksFor(100000), 1u);
}

TEST(BlockManager, AllocateGrowReleaseAccounting)
{
    BlockManager bm(10);
    EXPECT_EQ(bm.totalBlocks(), 10u);
    EXPECT_EQ(bm.freeBlocks(), 10u);
    EXPECT_FALSE(bm.resident(7));

    ASSERT_TRUE(bm.allocate(7, 3));
    EXPECT_TRUE(bm.resident(7));
    EXPECT_EQ(bm.holding(7), 3u);
    EXPECT_EQ(bm.usedBlocks(), 3u);
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.3);

    ASSERT_TRUE(bm.growTo(7, 5));
    EXPECT_EQ(bm.holding(7), 5u);
    EXPECT_EQ(bm.freeBlocks(), 5u);

    // Growing to the current size is a no-op, not an error.
    ASSERT_TRUE(bm.growTo(7, 5));
    EXPECT_EQ(bm.usedBlocks(), 5u);

    bm.release(7);
    EXPECT_FALSE(bm.resident(7));
    EXPECT_EQ(bm.holding(7), 0u);
    EXPECT_EQ(bm.usedBlocks(), 0u);
}

TEST(BlockManager, RefusesOverCommitWithoutSideEffects)
{
    BlockManager bm(8);
    ASSERT_TRUE(bm.allocate(1, 6));
    EXPECT_FALSE(bm.allocate(2, 3)); // only 2 free
    EXPECT_FALSE(bm.resident(2));
    EXPECT_FALSE(bm.growTo(1, 9)); // would exceed the pool
    EXPECT_EQ(bm.holding(1), 6u);
    EXPECT_EQ(bm.usedBlocks(), 6u);
    ASSERT_TRUE(bm.allocate(2, 2));
    EXPECT_EQ(bm.freeBlocks(), 0u);
}

TEST(BlockManager, FreedEqualsAllocatedAtDrain)
{
    BlockManager bm(64);
    uint64_t allocated = 0;
    for (uint64_t id = 0; id < 8; ++id) {
        ASSERT_TRUE(bm.allocate(id, id + 1));
        allocated += id + 1;
    }
    EXPECT_EQ(bm.usedBlocks(), allocated);
    for (uint64_t id = 0; id < 8; ++id)
        bm.release(id);
    EXPECT_EQ(bm.usedBlocks(), 0u);
    EXPECT_EQ(bm.freeBlocks(), bm.totalBlocks());
}

TEST(BlockManagerDeathTest, DoubleFreePanics)
{
    BlockManager bm(4);
    ASSERT_TRUE(bm.allocate(1, 2));
    bm.release(1);
    EXPECT_DEATH(bm.release(1), "double free");
}

TEST(BlockManagerDeathTest, DoubleAllocatePanics)
{
    BlockManager bm(4);
    ASSERT_TRUE(bm.allocate(1, 1));
    EXPECT_DEATH(bm.allocate(1, 1), "allocated twice");
}

TEST(BlockManagerDeathTest, ShrinkPanics)
{
    BlockManager bm(4);
    ASSERT_TRUE(bm.allocate(1, 3));
    EXPECT_DEATH(bm.growTo(1, 2), "shrink");
}

} // namespace
} // namespace pimba
