/**
 * @file
 * Block-manager invariants: demand quantization via BlockMapper, the
 * allocate/grow/release accounting, no-double-free, and freed ==
 * allocated at drain.
 */

#include <gtest/gtest.h>

#include "serving/block_manager.h"

namespace pimba {
namespace {

TEST(BlockMapper, QuantizesFixedAndPerTokenDemand)
{
    // 1 MiB of fixed state, 64 KiB per token, 16-token blocks.
    BlockMapper m = BlockMapper::make(Bytes(1 << 20), Bytes(1 << 16),
                                      Tokens(16));
    EXPECT_EQ(m.blockTokens, Tokens(16));
    EXPECT_DOUBLE_EQ(m.blockBytes.value(), 16.0 * (1 << 16));
    EXPECT_EQ(m.fixedBlocks, Blocks(1)); // ceil(1MiB / 1MiB)
    EXPECT_EQ(m.blocksFor(Tokens(0)), Blocks(1));
    EXPECT_EQ(m.blocksFor(Tokens(1)), Blocks(2));
    EXPECT_EQ(m.blocksFor(Tokens(16)), Blocks(2));
    EXPECT_EQ(m.blocksFor(Tokens(17)), Blocks(3));
    EXPECT_EQ(m.blocksFor(Tokens(160)), Blocks(11));
}

TEST(BlockMapper, PureSsmCostsOneStateBlockRegardlessOfLength)
{
    BlockMapper m = BlockMapper::make(Bytes(1 << 20), Bytes(0.0),
                                      Tokens(16));
    EXPECT_EQ(m.blockTokens, Tokens(0));
    EXPECT_DOUBLE_EQ(m.blockBytes.value(), static_cast<double>(1 << 20));
    EXPECT_EQ(m.blocksFor(Tokens(0)), Blocks(1));
    EXPECT_EQ(m.blocksFor(Tokens(100000)), Blocks(1));
}

TEST(BlockManager, AllocateGrowReleaseAccounting)
{
    BlockManager bm(Blocks(10));
    EXPECT_EQ(bm.totalBlocks(), Blocks(10));
    EXPECT_EQ(bm.freeBlocks(), Blocks(10));
    EXPECT_FALSE(bm.resident(7));

    ASSERT_TRUE(bm.allocate(7, Blocks(3)));
    EXPECT_TRUE(bm.resident(7));
    EXPECT_EQ(bm.holding(7), Blocks(3));
    EXPECT_EQ(bm.usedBlocks(), Blocks(3));
    EXPECT_DOUBLE_EQ(bm.utilization(), 0.3);

    ASSERT_TRUE(bm.growTo(7, Blocks(5)));
    EXPECT_EQ(bm.holding(7), Blocks(5));
    EXPECT_EQ(bm.freeBlocks(), Blocks(5));

    // Growing to the current size is a no-op, not an error.
    ASSERT_TRUE(bm.growTo(7, Blocks(5)));
    EXPECT_EQ(bm.usedBlocks(), Blocks(5));

    bm.release(7);
    EXPECT_FALSE(bm.resident(7));
    EXPECT_EQ(bm.holding(7), Blocks(0));
    EXPECT_EQ(bm.usedBlocks(), Blocks(0));
}

TEST(BlockManager, RefusesOverCommitWithoutSideEffects)
{
    BlockManager bm(Blocks(8));
    ASSERT_TRUE(bm.allocate(1, Blocks(6)));
    EXPECT_FALSE(bm.allocate(2, Blocks(3))); // only 2 free
    EXPECT_FALSE(bm.resident(2));
    EXPECT_FALSE(bm.growTo(1, Blocks(9))); // would exceed the pool
    EXPECT_EQ(bm.holding(1), Blocks(6));
    EXPECT_EQ(bm.usedBlocks(), Blocks(6));
    ASSERT_TRUE(bm.allocate(2, Blocks(2)));
    EXPECT_EQ(bm.freeBlocks(), Blocks(0));
}

TEST(BlockManager, FreedEqualsAllocatedAtDrain)
{
    BlockManager bm(Blocks(64));
    uint64_t allocated = 0;
    for (uint64_t id = 0; id < 8; ++id) {
        ASSERT_TRUE(bm.allocate(id, Blocks(id + 1)));
        allocated += id + 1;
    }
    EXPECT_EQ(bm.usedBlocks(), Blocks(allocated));
    for (uint64_t id = 0; id < 8; ++id)
        bm.release(id);
    EXPECT_EQ(bm.usedBlocks(), Blocks(0));
    EXPECT_EQ(bm.freeBlocks(), bm.totalBlocks());
}

TEST(BlockManagerDeathTest, DoubleFreePanics)
{
    BlockManager bm(Blocks(4));
    ASSERT_TRUE(bm.allocate(1, Blocks(2)));
    bm.release(1);
    EXPECT_DEATH(bm.release(1), "double free");
}

TEST(BlockManagerDeathTest, DoubleAllocatePanics)
{
    BlockManager bm(Blocks(4));
    ASSERT_TRUE(bm.allocate(1, Blocks(1)));
    EXPECT_DEATH(bm.allocate(1, Blocks(1)), "allocated twice");
}

TEST(BlockManagerDeathTest, ShrinkPanics)
{
    BlockManager bm(Blocks(4));
    ASSERT_TRUE(bm.allocate(1, Blocks(3)));
    EXPECT_DEATH(bm.growTo(1, Blocks(2)), "shrink");
}

} // namespace
} // namespace pimba
