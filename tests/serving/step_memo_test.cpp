/**
 * @file
 * Bucket-boundary pinning for the step-cost memo key math: a cache
 * length exactly on a bucket edge and one token past it must land in
 * the intended buckets for all three memos (decode, prefill, fused).
 * The engine's memoized costs are exact per key, so a key that moved
 * to the wrong bucket would silently charge a different cache length —
 * these tests freeze the edges.
 */

#include <gtest/gtest.h>

#include "serving/step_memo.h"

namespace pimba {
namespace {

TEST(StepMemo, BucketEdgesSplitExactlyAtMultiplesOfWidth)
{
    // [0, 64) -> 0, [64, 128) -> 1, ...
    EXPECT_EQ(seqBucket(0), 0u);
    EXPECT_EQ(seqBucket(kSeqBucket - 1), 0u);
    EXPECT_EQ(seqBucket(kSeqBucket), 1u);
    EXPECT_EQ(seqBucket(kSeqBucket + 1), 1u);
    EXPECT_EQ(seqBucket(2 * kSeqBucket - 1), 1u);
    EXPECT_EQ(seqBucket(2 * kSeqBucket), 2u);
    // A deep cache behaves the same: edge at 64k, one past stays put.
    EXPECT_EQ(seqBucket(64 * kSeqBucket - 1), 63u);
    EXPECT_EQ(seqBucket(64 * kSeqBucket), 64u);
    EXPECT_EQ(seqBucket(64 * kSeqBucket + 1), 64u);
}

TEST(StepMemo, BucketCenterIsTheMidpointOfTheContainingBucket)
{
    EXPECT_EQ(bucketCenter(0), kSeqBucket / 2);
    EXPECT_EQ(bucketCenter(kSeqBucket - 1), kSeqBucket / 2);
    EXPECT_EQ(bucketCenter(kSeqBucket), kSeqBucket + kSeqBucket / 2);
    EXPECT_EQ(bucketCenter(2 * kSeqBucket - 1),
              kSeqBucket + kSeqBucket / 2);
    EXPECT_EQ(bucketCenter(2 * kSeqBucket),
              2 * kSeqBucket + kSeqBucket / 2);
}

TEST(StepMemo, DecodeKeySharesBucketUpToTheEdgeOnly)
{
    const int batch = 7;
    // Same bucket: same key (the memo hit the engine relies on).
    EXPECT_EQ(decodeMemoKey(batch, kSeqBucket),
              decodeMemoKey(batch, 2 * kSeqBucket - 1));
    // Edge crossing: one token past the last in-bucket length rekeys.
    EXPECT_NE(decodeMemoKey(batch, 2 * kSeqBucket - 1),
              decodeMemoKey(batch, 2 * kSeqBucket));
    // Batch is part of the key even at identical cache lengths.
    EXPECT_NE(decodeMemoKey(batch, kSeqBucket),
              decodeMemoKey(batch + 1, kSeqBucket));
}

TEST(StepMemo, PrefillKeySharesBucketUpToTheEdgeOnly)
{
    const uint64_t chunk = 512;
    EXPECT_EQ(prefillMemoKey(chunk, 3 * kSeqBucket),
              prefillMemoKey(chunk, 4 * kSeqBucket - 1));
    EXPECT_NE(prefillMemoKey(chunk, 4 * kSeqBucket - 1),
              prefillMemoKey(chunk, 4 * kSeqBucket));
    EXPECT_NE(prefillMemoKey(chunk, 3 * kSeqBucket),
              prefillMemoKey(chunk + 1, 3 * kSeqBucket));
}

TEST(StepMemo, MixedKeyBucketsDecodeAndPrefillPositionsIndependently)
{
    const int db = 32;
    const uint64_t pt = 128;
    uint64_t base = mixedMemoKey(db, kSeqBucket, pt, 2 * kSeqBucket);
    // Within-bucket moves of either position keep the key.
    EXPECT_EQ(base,
              mixedMemoKey(db, 2 * kSeqBucket - 1, pt, 2 * kSeqBucket));
    EXPECT_EQ(base,
              mixedMemoKey(db, kSeqBucket, pt, 3 * kSeqBucket - 1));
    // Crossing either edge rekeys, and the two fields do not alias.
    uint64_t decode_edge =
        mixedMemoKey(db, 2 * kSeqBucket, pt, 2 * kSeqBucket);
    uint64_t prefill_edge =
        mixedMemoKey(db, kSeqBucket, pt, 3 * kSeqBucket);
    EXPECT_NE(base, decode_edge);
    EXPECT_NE(base, prefill_edge);
    EXPECT_NE(decode_edge, prefill_edge);
    // Batch / token counts are keyed too.
    EXPECT_NE(base, mixedMemoKey(db + 1, kSeqBucket, pt, 2 * kSeqBucket));
    EXPECT_NE(base, mixedMemoKey(db, kSeqBucket, pt + 1, 2 * kSeqBucket));
}

TEST(StepMemo, PlannedIterationKeysAvoidTheEmptySentinel)
{
    // FlatTable reserves key 0; any planned iteration has batch >= 1,
    // chunk >= 1, or decode_batch + prefill_tokens >= 1.
    EXPECT_NE(decodeMemoKey(1, 0), 0u);
    EXPECT_NE(prefillMemoKey(1, 0), 0u);
    EXPECT_NE(mixedMemoKey(1, 0, 0, 0), 0u);
    EXPECT_NE(mixedMemoKey(0, 0, 1, 0), 0u);
}

TEST(StepMemo, MixedKeyFieldsStayInsideTheirLanes)
{
    // Maximal in-bound fields must not collide with a key that differs
    // in exactly one field — i.e. no carry into a neighbouring lane.
    const int db = static_cast<int>(kMixedMaxBatch - 1);
    const uint64_t pt = kMixedMaxPrefillTokens - 1;
    const uint64_t deep = (kMixedMaxBucket - 1) * kSeqBucket;
    uint64_t k = mixedMemoKey(db, deep, pt, deep);
    EXPECT_NE(k, mixedMemoKey(db - 1, deep, pt, deep));
    EXPECT_NE(k, mixedMemoKey(db, deep - kSeqBucket, pt, deep));
    EXPECT_NE(k, mixedMemoKey(db, deep, pt - 1, deep));
    EXPECT_NE(k, mixedMemoKey(db, deep, pt, deep - kSeqBucket));
}

} // namespace
} // namespace pimba
