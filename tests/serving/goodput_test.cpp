/**
 * @file
 * Regression tests for the paper-level serving claims at the request
 * level: at saturation on Mamba-2 2.7B, Pimba must sustain strictly
 * higher goodput and token throughput than the GPU baseline, and
 * capacity must plateau (not climb) once the system is saturated.
 */

#include <gtest/gtest.h>

#include "serving/workload.h"

namespace pimba {
namespace {

ServingMetrics
serveAtRate(SystemKind kind, double rate)
{
    return servePoisson(kind, mamba2_2p7b(), rate);
}

TEST(ServingGoodput, PimbaSustainsHigherGoodputThanGpuAtSaturation)
{
    // 32 req/s saturates both systems (GPU capacity is ~8 req/s of
    // 256-token outputs, Pimba's ~18).
    ServingMetrics gpu = serveAtRate(SystemKind::GPU, 32.0);
    ServingMetrics pimba = serveAtRate(SystemKind::PIMBA, 32.0);

    EXPECT_GT(pimba.goodput, gpu.goodput);
    EXPECT_GT(pimba.tokensPerSec, 1.5 * gpu.tokensPerSec);
    // Saturated GPU queueing shows up as tail TTFT blowup.
    EXPECT_GT(gpu.ttft.p95, pimba.ttft.p95);
}

TEST(ServingGoodput, ThroughputPlateausPastSaturation)
{
    ServingMetrics at32 = serveAtRate(SystemKind::GPU, 32.0);
    ServingMetrics at64 = serveAtRate(SystemKind::GPU, 64.0);
    // Past the knee, offered load doubles but capacity does not.
    EXPECT_LT(at64.tokensPerSec, 1.1 * at32.tokensPerSec);
}

TEST(ServingGoodput, GoodputTracksOfferedLoadBelowSaturation)
{
    // Well under capacity, nearly every request meets the SLO, so
    // goodput approaches the completion rate.
    ServingMetrics m = serveAtRate(SystemKind::PIMBA, 2.0);
    EXPECT_GT(m.goodput, 0.9 * m.requestsPerSec);
    EXPECT_EQ(m.sloViolations, 0u);
    EXPECT_TRUE(sustainsSlo(m));
}

TEST(ServingGoodput, PimDesignsBeatGpuBaselineAtSaturation)
{
    ServingMetrics gpu = serveAtRate(SystemKind::GPU, 32.0);
    for (SystemKind kind : {SystemKind::GPU_Q, SystemKind::GPU_PIM,
                            SystemKind::PIMBA}) {
        ServingMetrics m = serveAtRate(kind, 32.0);
        EXPECT_GT(m.tokensPerSec, gpu.tokensPerSec)
            << systemName(kind);
    }
}

} // namespace
} // namespace pimba
