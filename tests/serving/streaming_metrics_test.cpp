/**
 * @file
 * Streaming-metrics equivalence tests: the quantile-sketch pipeline
 * must reproduce the exact (vector-based) computeMetrics() output on a
 * real engine run — exact counts/means/rates, percentiles within 1% —
 * and the mergeable per-replica aggregation must match the
 * sample-vector fleet aggregation under the same budget. These pin the
 * acceptance bound `--stream-metrics` is documented to hold
 * (docs/observability.md).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cluster/fleet_metrics.h"
#include "serving/engine.h"
#include "serving/metrics.h"
#include "serving/trace.h"

namespace pimba {
namespace {

constexpr double kBudget = 0.01; // 1% relative equivalence budget

std::vector<CompletedRequest>
servingRun()
{
    // 512 requests: the sketch's own error is 0.1%, but it answers
    // the nearest-rank order statistic while percentileSorted()
    // interpolates between two — on a small, quantized population
    // (TPOT clusters at discrete step costs) that convention gap
    // alone can exceed 1%. A denser population keeps the target ranks
    // inside value clusters, which is also the regime the streaming
    // mode exists for (million-request replays).
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 24.0;
    tc.numRequests = 512;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 64;
    tc.inputLenMax = 512;
    tc.outputLen = 16;
    tc.outputLenMax = 96;
    tc.seed = 4242;
    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    ServingEngine engine(sim, mamba2_2p7b(), {});
    return engine.run(generateTrace(tc)).completed;
}

void
expectWithinBudget(double streamed, double exact, const char *what)
{
    if (exact == 0.0) {
        EXPECT_EQ(streamed, 0.0) << what;
        return;
    }
    EXPECT_LE(std::abs(streamed - exact) / std::abs(exact), kBudget)
        << what << ": streamed=" << streamed << " exact=" << exact;
}

void
expectSummariesEquivalent(const LatencySummary &s,
                          const LatencySummary &e, const char *what)
{
    // Count, mean, min, and max are exact in the streaming pipeline.
    EXPECT_EQ(s.count, e.count) << what;
    EXPECT_DOUBLE_EQ(s.mean, e.mean) << what;
    EXPECT_DOUBLE_EQ(s.min, e.min) << what;
    EXPECT_DOUBLE_EQ(s.max, e.max) << what;
    expectWithinBudget(s.p50, e.p50, what);
    expectWithinBudget(s.p95, e.p95, what);
    expectWithinBudget(s.p99, e.p99, what);
}

TEST(StreamingMetrics, MatchesExactPipelineOnARealServingRun)
{
    std::vector<CompletedRequest> done = servingRun();
    ASSERT_GE(done.size(), 500u);
    Seconds makespan(20.0);
    SloConfig slo;

    ServingMetrics exact = computeMetrics(done, makespan, slo);
    StreamingMetrics collector(slo);
    for (const CompletedRequest &c : done)
        collector.observe(c);
    EXPECT_EQ(collector.observed(), done.size());
    ServingMetrics streamed = collector.finalize(makespan);

    // Exact members are bit-equal, not merely close.
    EXPECT_EQ(streamed.requests, exact.requests);
    EXPECT_EQ(streamed.generatedTokens, exact.generatedTokens);
    EXPECT_EQ(streamed.sloViolations, exact.sloViolations);
    EXPECT_DOUBLE_EQ(streamed.tokensPerSec.value(),
                     exact.tokensPerSec.value());
    EXPECT_DOUBLE_EQ(streamed.requestsPerSec.value(),
                     exact.requestsPerSec.value());
    EXPECT_DOUBLE_EQ(streamed.goodput.value(), exact.goodput.value());

    expectSummariesEquivalent(streamed.ttft, exact.ttft, "ttft");
    expectSummariesEquivalent(streamed.tpot, exact.tpot, "tpot");
    expectSummariesEquivalent(streamed.latency, exact.latency,
                              "latency");
    expectSummariesEquivalent(streamed.queueing, exact.queueing,
                              "queueing");
    expectSummariesEquivalent(streamed.preemptions, exact.preemptions,
                              "preemptions");
}

TEST(StreamingMetrics, CollectorsMergeAcrossReplicaShards)
{
    std::vector<CompletedRequest> done = servingRun();
    Seconds makespan(20.0);
    SloConfig slo;

    StreamingMetrics whole(slo);
    StreamingMetrics shard_a(slo), shard_b(slo);
    for (size_t i = 0; i < done.size(); ++i) {
        whole.observe(done[i]);
        (i % 2 ? shard_a : shard_b).observe(done[i]);
    }
    shard_a.merge(shard_b);

    ServingMetrics merged = shard_a.finalize(makespan);
    ServingMetrics direct = whole.finalize(makespan);
    EXPECT_EQ(merged.requests, direct.requests);
    EXPECT_DOUBLE_EQ(merged.goodput.value(), direct.goodput.value());
    // Sketch merge is exact bucket arithmetic: the merged collector
    // answers identically to one that saw the whole stream.
    EXPECT_DOUBLE_EQ(merged.ttft.p50, direct.ttft.p50);
    EXPECT_DOUBLE_EQ(merged.ttft.p99, direct.ttft.p99);
    EXPECT_DOUBLE_EQ(merged.latency.p95, direct.latency.p95);
}

TEST(StreamingMetrics, FleetAggregationMatchesVectorAggregation)
{
    std::vector<CompletedRequest> done = servingRun();
    Seconds makespan(20.0);
    SloConfig slo;

    // Split the run into two synthetic "replicas".
    std::vector<ServingReport> replicas(2);
    for (size_t i = 0; i < done.size(); ++i)
        replicas[i % 2].completed.push_back(done[i]);

    ServingMetrics exact = aggregateMetrics(replicas, makespan, slo);
    ServingMetrics streamed =
        aggregateMetricsStreaming(replicas, makespan, slo);

    EXPECT_EQ(streamed.requests, exact.requests);
    EXPECT_EQ(streamed.generatedTokens, exact.generatedTokens);
    EXPECT_DOUBLE_EQ(streamed.goodput.value(), exact.goodput.value());
    expectSummariesEquivalent(streamed.ttft, exact.ttft, "fleet ttft");
    expectSummariesEquivalent(streamed.tpot, exact.tpot, "fleet tpot");
    expectSummariesEquivalent(streamed.latency, exact.latency,
                              "fleet latency");
}

TEST(StreamingMetrics, EmptyCollectorFinalizesToZeros)
{
    StreamingMetrics collector;
    ServingMetrics m = collector.finalize(Seconds(5.0));
    EXPECT_EQ(m.requests, 0u);
    EXPECT_DOUBLE_EQ(m.tokensPerSec.value(), 0.0);
    EXPECT_DOUBLE_EQ(m.ttft.p99, 0.0);
    EXPECT_EQ(m.ttft.count, 0u);

    ServingMetrics fleet = aggregateMetricsStreaming({}, Seconds(5.0),
                                                     SloConfig{});
    EXPECT_EQ(fleet.requests, 0u);
}

} // namespace
} // namespace pimba
