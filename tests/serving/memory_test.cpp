/**
 * @file
 * Paged-memory tests for the engine: resident footprint must never
 * exceed the budget, a budget that only fits one request's prompt must
 * serialize, on-demand allocation must admit more concurrency than the
 * seed's peak-footprint reservation would have, and KV-cache growth
 * must be accounted for attention models.
 */

#include <gtest/gtest.h>

#include "serving/engine.h"
#include "serving/trace.h"

namespace pimba {
namespace {

TraceConfig
burstTrace(int n, uint64_t input, uint64_t output)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 1000.0; // near-simultaneous burst
    tc.numRequests = n;
    tc.inputLen = input;
    tc.outputLen = output;
    return tc;
}

TEST(ServingMemory, BudgetNeverExceededUnderTightBudget)
{
    ModelConfig model = opt2p7b(); // KV cache grows per token
    ServingSimulator sim(makeSystem(SystemKind::GPU));

    Bytes weights = sim.memoryUsage(model, 1, 0).weights;
    Bytes per_req = sim.requestFootprint(model, 256 + 64);
    EngineConfig ec;
    ec.memoryBudget = weights + 3.5 * per_req; // 3.5 peak footprints

    ServingEngine engine(sim, model, ec);
    auto rep = engine.run(generateTrace(burstTrace(12, 256, 64)));

    EXPECT_EQ(rep.completed.size(), 12u);
    EXPECT_LE(rep.peakMemory, ec.memoryBudget);
    EXPECT_LE(rep.peakBlockUtil, 1.0);
    // Peak-footprint reservation fits exactly 3 requests here; paged
    // on-demand allocation must do at least as well.
    EXPECT_GE(rep.peakBatch, 3);
}

TEST(ServingMemory, OnDemandAdmissionBeatsPeakReservation)
{
    // Short prompts with long outputs: the seed engine reserved
    // input+output for the whole lifetime, so this budget admitted only
    // 2 requests. Paged allocation only pledges the prompt, so early
    // decode phases overlap far more than 2 requests deep.
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    Bytes weights = sim.memoryUsage(model, 1, 0).weights;
    EngineConfig ec;
    ec.memoryBudget =
        weights + 2.5 * sim.requestFootprint(model, 64 + 960);
    ServingEngine engine(sim, model, ec);
    auto rep = engine.run(generateTrace(burstTrace(12, 64, 960)));
    EXPECT_EQ(rep.completed.size(), 12u);
    EXPECT_GT(rep.peakBatch, 2);
    EXPECT_LE(rep.peakMemory, ec.memoryBudget);
}

TEST(ServingMemory, BudgetForOneRequestSerializes)
{
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    Bytes weights = sim.memoryUsage(model, 1, 0).weights;
    EngineConfig ec;
    ec.memoryBudget = weights + 1.5 * sim.requestFootprint(model,
                                                           128 + 16);
    ServingEngine engine(sim, model, ec);
    auto rep = engine.run(generateTrace(burstTrace(5, 128, 16)));
    EXPECT_EQ(rep.completed.size(), 5u);
    EXPECT_EQ(rep.peakBatch, 1);
}

TEST(ServingMemory, DefaultBudgetIsDeviceCapacity)
{
    SystemConfig sys = makeSystem(SystemKind::PIMBA, 2);
    ServingSimulator sim(sys);
    ServingEngine engine(sim, mamba2_2p7b());
    auto rep = engine.run(generateTrace(burstTrace(4, 64, 4)));
    EXPECT_DOUBLE_EQ(rep.memoryBudget.value(),
                     sys.gpu.memCapacity * sys.nGpus);
    EXPECT_GT(rep.totalBlocks, Blocks(0));
}

TEST(ServingMemory, FootprintGrowsWithKvForAttentionOnly)
{
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    ModelConfig attn = opt2p7b();
    ModelConfig ssm = mamba2_2p7b();
    EXPECT_GT(sim.requestFootprint(attn, 4096),
              sim.requestFootprint(attn, 512));
    // Pure SSMs hold constant per-request state, independent of length.
    EXPECT_DOUBLE_EQ(sim.requestFootprint(ssm, 4096).value(),
                     sim.requestFootprint(ssm, 512).value());
}

TEST(ServingMemory, QuantizedStateAdmitsLargerBatches)
{
    // Same budget, same burst: Pimba's MX8 state/KV is half the fp16
    // footprint, so the block pool holds twice the tokens and admission
    // fits more concurrent requests than GPU.
    ModelConfig model = opt2p7b();
    ServingSimulator gpu(makeSystem(SystemKind::GPU));
    ServingSimulator pimba(makeSystem(SystemKind::PIMBA));
    Bytes weights = gpu.memoryUsage(model, 1, 0).weights;
    Bytes budget =
        weights + 4.0 * gpu.requestFootprint(model, 2048 + 256);

    EngineConfig ec;
    ec.memoryBudget = budget;
    auto trace = generateTrace(burstTrace(16, 2048, 256));
    auto gpuRep = ServingEngine(gpu, model, ec).run(trace);
    auto pimbaRep = ServingEngine(pimba, model, ec).run(trace);
    EXPECT_GT(pimbaRep.peakBatch, gpuRep.peakBatch);
}

TEST(ServingMemoryDeathTest, OversizedRequestIsFatal)
{
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    EngineConfig ec;
    // Budget covers the weights but not even one request's KV cache.
    ec.memoryBudget = sim.memoryUsage(model, 1, 0).weights +
                      0.5 * sim.requestFootprint(model, 4096 + 512);
    ServingEngine engine(sim, model, ec);
    auto trace = generateTrace(burstTrace(1, 4096, 512));
    EXPECT_EXIT(engine.run(trace), testing::ExitedWithCode(1),
                "can never fit");
}

} // namespace
} // namespace pimba
