/**
 * @file
 * Metric-aggregation tests, in particular the TPOT sampling rule:
 * single-token requests have no inter-token gap, must not drag the
 * TPOT percentiles toward zero, and still count as (trivially)
 * TPOT-compliant for the SLO.
 */

#include <gtest/gtest.h>

#include "serving/metrics.h"

namespace pimba {
namespace {

CompletedRequest
completed(uint64_t output_len, double ttft, double tpot, double latency)
{
    CompletedRequest c;
    c.req.outputLen = output_len;
    c.ttft = Seconds(ttft);
    c.tpot = Seconds(tpot);
    c.latency = Seconds(latency);
    return c;
}

TEST(ServingMetricsAgg, SingleTokenRequestsExcludedFromTpotSummary)
{
    // Three multi-token requests at 10 ms TPOT, three single-token
    // requests whose tpot is 0.0 by construction.
    std::vector<CompletedRequest> done;
    for (int i = 0; i < 3; ++i)
        done.push_back(completed(16, 0.2, 0.010, 0.5));
    for (int i = 0; i < 3; ++i)
        done.push_back(completed(1, 0.2, 0.0, 0.2));

    SloConfig slo; // ttft 1.0 s, tpot 20 ms
    ServingMetrics m = computeMetrics(done, Seconds(10.0), slo);

    // The summary reflects only the requests that actually decoded:
    // with zero-tpot singletons included, the p50 would be 0.0.
    EXPECT_DOUBLE_EQ(m.tpot.p50, 0.010);
    EXPECT_DOUBLE_EQ(m.tpot.mean, 0.010);
    EXPECT_DOUBLE_EQ(m.tpot.max, 0.010);
    // Single-token requests still count for the SLO (trivially
    // compliant on TPOT) and for throughput.
    EXPECT_EQ(m.sloViolations, 0u);
    EXPECT_EQ(m.requests, 6u);
    EXPECT_EQ(m.generatedTokens, 3u * 16u + 3u);
}

TEST(ServingMetricsAgg, AllSingleTokenRequestsYieldEmptyTpotSummary)
{
    std::vector<CompletedRequest> done = {completed(1, 0.1, 0.0, 0.1),
                                          completed(1, 0.3, 0.0, 0.3)};
    ServingMetrics m = computeMetrics(done, Seconds(1.0), SloConfig{});
    EXPECT_DOUBLE_EQ(m.tpot.p50, 0.0);
    EXPECT_DOUBLE_EQ(m.tpot.p95, 0.0);
    EXPECT_DOUBLE_EQ(m.tpot.max, 0.0);
    EXPECT_DOUBLE_EQ(m.ttft.p50, 0.2); // TTFT summary still populated
}

TEST(ServingMetricsAgg, EmptySamplesSummarizeToZeros)
{
    // A saturated replica that completes zero requests must report
    // zeros, not UB.
    LatencySummary s = summarizeLatency({});
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.p50, 0.0);
    EXPECT_DOUBLE_EQ(s.p95, 0.0);
    EXPECT_DOUBLE_EQ(s.p99, 0.0);
    EXPECT_DOUBLE_EQ(s.max, 0.0);

    ServingMetrics m = computeMetrics({}, Seconds(5.0), SloConfig{});
    EXPECT_EQ(m.requests, 0u);
    EXPECT_EQ(m.generatedTokens, 0u);
    EXPECT_DOUBLE_EQ(m.tokensPerSec.value(), 0.0);
    EXPECT_DOUBLE_EQ(m.goodput.value(), 0.0);
    EXPECT_DOUBLE_EQ(m.ttft.p99, 0.0);
    EXPECT_DOUBLE_EQ(m.queueing.p95, 0.0);
    EXPECT_DOUBLE_EQ(m.preemptions.max, 0.0);
}

TEST(ServingMetricsAgg, SummariesCarryExactCountAndMin)
{
    // count says how large the population behind the percentiles is
    // (the TPOT exclusion rule makes it differ from m.requests), and
    // min anchors the distribution's other end.
    std::vector<CompletedRequest> done;
    for (int i = 1; i <= 5; ++i)
        done.push_back(completed(16, 0.1 * i, 0.002 * i, 0.2 * i));
    done.push_back(completed(1, 0.05, 0.0, 0.05)); // single token

    ServingMetrics m = computeMetrics(done, Seconds(5.0), SloConfig{});
    EXPECT_EQ(m.ttft.count, 6u);
    EXPECT_EQ(m.latency.count, 6u);
    EXPECT_EQ(m.tpot.count, 5u); // singleton excluded
    EXPECT_DOUBLE_EQ(m.ttft.min, 0.05);
    EXPECT_DOUBLE_EQ(m.tpot.min, 0.002);
    EXPECT_DOUBLE_EQ(m.latency.min, 0.05);

    // The sweep-table surface exposes both: an "n" column and a
    // "TTFT min" column, aligned between header and row.
    std::vector<std::string> header = metricsHeader();
    std::vector<std::string> row = metricsRow("label", m);
    ASSERT_EQ(header.size(), row.size());
    size_t n_col = 0, min_col = 0;
    for (size_t i = 0; i < header.size(); ++i) {
        if (header[i] == "n")
            n_col = i;
        if (header[i] == "TTFT min")
            min_col = i;
    }
    ASSERT_NE(n_col, 0u);
    ASSERT_NE(min_col, 0u);
    EXPECT_EQ(row[n_col], "6");
    EXPECT_EQ(row[min_col].substr(0, 4), "0.05");
}

TEST(ServingMetricsAgg, QueueingAndPreemptionPercentilesSurfaced)
{
    std::vector<CompletedRequest> done;
    for (int i = 0; i < 4; ++i) {
        CompletedRequest c = completed(8, 0.2, 0.01, 0.5);
        c.queueing = Seconds(0.1 * (i + 1)); // 0.1 .. 0.4
        c.preemptions = static_cast<uint64_t>(i); // 0 .. 3
        done.push_back(c);
    }
    ServingMetrics m = computeMetrics(done, Seconds(2.0), SloConfig{});
    EXPECT_DOUBLE_EQ(m.queueing.mean, 0.25);
    EXPECT_DOUBLE_EQ(m.queueing.max, 0.4);
    EXPECT_DOUBLE_EQ(m.queueing.p50, 0.25);
    EXPECT_DOUBLE_EQ(m.preemptions.max, 3.0);
    EXPECT_DOUBLE_EQ(m.preemptions.mean, 1.5);
}

TEST(ServingMetricsAgg, SloViolationsCountTtftAndTpotMisses)
{
    SloConfig slo;
    slo.ttft = Seconds(0.5);
    slo.tpot = Seconds(0.02);
    std::vector<CompletedRequest> done = {
        completed(8, 0.1, 0.010, 0.2), // compliant
        completed(8, 0.9, 0.010, 1.0), // TTFT miss
        completed(8, 0.1, 0.050, 0.6), // TPOT miss
        completed(1, 0.1, 0.0, 0.1),   // single token, compliant
    };
    ServingMetrics m = computeMetrics(done, Seconds(2.0), slo);
    EXPECT_EQ(m.sloViolations, 2u);
    EXPECT_DOUBLE_EQ(m.goodput.value(), 1.0); // 2 good / 2 s makespan
}

TEST(ServingMetricsAgg, SingleTokenTpotIsVacuousRegardlessOfStoredValue)
{
    // The goodput rule must skip the TPOT clause for outputLen <= 1
    // *explicitly*, not by assuming c.tpot == 0.0 for singletons: a
    // sentinel (or garbage) tpot on a single-token record must not
    // flip its SLO verdict in either direction.
    SloConfig slo;
    slo.ttft = Seconds(0.5);
    slo.tpot = Seconds(0.02);
    std::vector<CompletedRequest> done = {
        // Single token, TTFT good, absurd tpot value: still good.
        completed(1, 0.1, 99.0, 0.1),
        // Single token, TTFT miss: bad (TTFT clause still applies).
        completed(1, 0.9, 0.0, 0.9),
        // Two tokens: the TPOT clause is live again.
        completed(2, 0.1, 0.050, 0.2),
    };
    ServingMetrics m = computeMetrics(done, Seconds(2.0), slo);
    EXPECT_EQ(m.sloViolations, 2u);
    // only the first request is good
    EXPECT_DOUBLE_EQ(m.goodput.value(), 0.5);
}

} // namespace
} // namespace pimba
