/**
 * @file
 * Scheduler-policy tests: admission ordering, Sarathi chunk packing
 * under the token budget, per-policy deterministic replay,
 * eviction/recompute token conservation, and the pinned saturation
 * claim — the Sarathi-style fused chunked-prefill policy beats FCFS
 * tail TTFT at equal-or-better goodput on the seeded Poisson trace.
 */

#include <gtest/gtest.h>

#include "serving/scheduler.h"
#include "serving/workload.h"

namespace pimba {
namespace {

Request
req(uint64_t id, uint64_t input, uint64_t output)
{
    Request r;
    r.id = id;
    r.inputLen = input;
    r.outputLen = output;
    return r;
}

RequestState
resident(uint64_t id, uint64_t input, uint64_t prefilled,
         uint64_t generated)
{
    RequestState rs;
    rs.req = req(id, input, 64);
    rs.prefilled = prefilled;
    rs.generated = generated;
    rs.phase = prefilled >= input ? RequestPhase::Decode
                                  : RequestPhase::Prefill;
    return rs;
}

TEST(SchedulerPolicy, NamesAndRegistry)
{
    EXPECT_EQ(allPolicies().size(), 3u);
    EXPECT_EQ(policyName(SchedulerPolicy::FCFS), "fcfs");
    EXPECT_EQ(policyName(SchedulerPolicy::SJF), "sjf");
    EXPECT_EQ(policyName(SchedulerPolicy::Sarathi), "sarathi");
}

TEST(SchedulerPolicy, FcfsAdmitsHeadSjfAdmitsShortest)
{
    std::deque<Request> waiting = {req(0, 500, 100), req(1, 50, 10),
                                   req(2, 200, 20)};
    auto fcfs = makeScheduler(SchedulerPolicy::FCFS, Tokens(512),
                              Tokens(1024));
    auto sjf = makeScheduler(SchedulerPolicy::SJF, Tokens(512),
                             Tokens(1024));
    EXPECT_EQ(fcfs->pickAdmission(waiting), 0u);
    EXPECT_EQ(sjf->pickAdmission(waiting), 1u);
    // Ties fall to the earlier (front-most) request.
    waiting.push_back(req(3, 50, 10));
    EXPECT_EQ(sjf->pickAdmission(waiting), 1u);
}

TEST(SchedulerPolicy, OneChunkPoliciesRunOnePrefillUnfused)
{
    std::vector<RequestState> running = {
        resident(0, 128, 128, 5),  // decode
        resident(1, 1000, 0, 0),   // prefill, oldest admitted
        resident(2, 1000, 0, 0),   // prefill
    };
    for (auto policy : {SchedulerPolicy::FCFS, SchedulerPolicy::SJF}) {
        auto s = makeScheduler(policy, Tokens(512), Tokens(1024));
        IterationPlan plan = s->planIteration(running);
        EXPECT_FALSE(plan.fused);
        ASSERT_EQ(plan.decodeIdx.size(), 1u);
        EXPECT_EQ(plan.decodeIdx[0], 0u);
        ASSERT_EQ(plan.prefill.size(), 1u);
        EXPECT_EQ(plan.prefill[0].idx, 1u);
        EXPECT_EQ(plan.prefill[0].tokens, Tokens(512));
    }
}

TEST(SchedulerPolicy, SarathiPacksChunksUnderTokenBudget)
{
    std::vector<RequestState> running = {
        resident(0, 128, 128, 5),  // decode: 1 budget token
        resident(1, 128, 128, 9),  // decode: 1 budget token
        resident(2, 600, 0, 0),    // prefill, 600 left
        resident(3, 400, 0, 0),    // prefill, 400 left
        resident(4, 400, 0, 0),    // prefill, 400 left
    };
    auto s = makeScheduler(SchedulerPolicy::Sarathi, Tokens(512),
                           Tokens(1000));
    IterationPlan plan = s->planIteration(running);
    EXPECT_TRUE(plan.fused);
    EXPECT_EQ(plan.decodeIdx.size(), 2u);
    // Budget 1000 - 2 decode = 998 prefill tokens: 512 (chunk cap) to
    // request 2, 400 to request 3, the remaining 86 to request 4.
    ASSERT_EQ(plan.prefill.size(), 3u);
    EXPECT_EQ(plan.prefill[0].idx, 2u);
    EXPECT_EQ(plan.prefill[0].tokens, Tokens(512));
    EXPECT_EQ(plan.prefill[1].idx, 3u);
    EXPECT_EQ(plan.prefill[1].tokens, Tokens(400));
    EXPECT_EQ(plan.prefill[2].idx, 4u);
    EXPECT_EQ(plan.prefill[2].tokens, Tokens(86));

    uint64_t spent = plan.decodeIdx.size();
    for (const auto &slice : plan.prefill)
        spent += slice.tokens.value();
    EXPECT_EQ(spent, 1000u);
}

TEST(SchedulerPolicy, SarathiNeverThrottlesDecodes)
{
    std::vector<RequestState> running = {
        resident(0, 64, 64, 1), resident(1, 64, 64, 1),
        resident(2, 64, 64, 1), resident(3, 512, 0, 0)};
    auto s = makeScheduler(SchedulerPolicy::Sarathi, Tokens(512),
                           Tokens(2));
    IterationPlan plan = s->planIteration(running);
    // Budget 2 is already exceeded by the 3 decodes; they all still
    // run, and no prefill is granted this iteration.
    EXPECT_EQ(plan.decodeIdx.size(), 3u);
    EXPECT_TRUE(plan.prefill.empty());
}

TraceConfig
pressureTrace()
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 24.0;
    tc.numRequests = 32;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 32;
    tc.inputLenMax = 256;
    tc.outputLen = 64;
    tc.outputLenMax = 512;
    tc.seed = 99;
    return tc;
}

/** Engine under real memory pressure so evictions actually happen. */
ServingReport
runUnderPressure(SchedulerPolicy policy)
{
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    EngineConfig ec;
    ec.policy = policy;
    ec.memoryBudget = sim.memoryUsage(model, 1, 0).weights +
                      2.0 * sim.requestFootprint(model, 256 + 512);
    return ServingEngine(sim, model, ec)
        .run(generateTrace(pressureTrace()));
}

TEST(SchedulerPolicy, EvictionConservesDeliveredTokens)
{
    auto trace = generateTrace(pressureTrace());
    uint64_t expected = 0;
    for (const auto &r : trace)
        expected += r.outputLen;

    for (SchedulerPolicy policy : allPolicies()) {
        ServingReport rep = runUnderPressure(policy);
        ASSERT_EQ(rep.completed.size(), trace.size())
            << policyName(policy);
        EXPECT_EQ(rep.generatedTokens, expected) << policyName(policy);
        EXPECT_GT(rep.preemptions, 0u) << policyName(policy);
        // Every eviction discards cached tokens that must be redone.
        EXPECT_GT(rep.recomputedTokens, 0u) << policyName(policy);
        EXPECT_LE(rep.peakMemory, rep.memoryBudget)
            << policyName(policy);
    }
}

TEST(SchedulerPolicy, EveryPolicyReplaysDeterministically)
{
    for (SchedulerPolicy policy : allPolicies()) {
        ServingReport a = runUnderPressure(policy);
        ServingReport b = runUnderPressure(policy);
        EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value()) << policyName(policy);
        EXPECT_EQ(a.iterations, b.iterations) << policyName(policy);
        EXPECT_EQ(a.preemptions, b.preemptions) << policyName(policy);
        ASSERT_EQ(a.completed.size(), b.completed.size());
        for (size_t i = 0; i < a.completed.size(); ++i) {
            EXPECT_EQ(a.completed[i].req.id, b.completed[i].req.id);
            EXPECT_DOUBLE_EQ(a.completed[i].ttft.value(),
                             b.completed[i].ttft.value());
            EXPECT_DOUBLE_EQ(a.completed[i].latency.value(),
                             b.completed[i].latency.value());
        }
    }
}

TEST(SchedulerPolicy, SjfFinishesShortJobsFirstUnderBurst)
{
    // A long job arrives first; under SJF the short burst jobs jump it.
    std::vector<Request> trace = {req(0, 2048, 256), req(1, 64, 8),
                                  req(2, 64, 8), req(3, 64, 8)};
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    EngineConfig ec;
    ec.maxBatch = 1; // serialize so admission order is completion order
    EngineConfig fcfsEc = ec;
    fcfsEc.policy = SchedulerPolicy::FCFS;
    EngineConfig sjfEc = ec;
    sjfEc.policy = SchedulerPolicy::SJF;

    auto fcfs = ServingEngine(sim, model, fcfsEc).run(trace);
    auto sjf = ServingEngine(sim, model, sjfEc).run(trace);
    ASSERT_EQ(fcfs.completed.size(), 4u);
    ASSERT_EQ(sjf.completed.size(), 4u);
    EXPECT_EQ(fcfs.completed[0].req.id, 0u); // arrival order
    EXPECT_EQ(sjf.completed[0].req.id, 1u);  // shortest first
    EXPECT_EQ(sjf.completed[3].req.id, 0u);  // long job drained last
    EXPECT_LT(sjf.metrics.latency.mean, fcfs.metrics.latency.mean);
}

/**
 * Pinned acceptance claim: on the canonical seeded Poisson workload at
 * a saturating arrival rate, the Sarathi-style policy achieves strictly
 * better p95 TTFT than FCFS at equal-or-better goodput, on both an
 * attention model and an SSM.
 */
TEST(SchedulerPolicy, SarathiBeatsFcfsTailTtftAtSaturation)
{
    struct Case
    {
        SystemKind kind;
        ModelConfig model;
    };
    const Case cases[] = {{SystemKind::GPU, opt2p7b()},
                          {SystemKind::PIMBA, mamba2_2p7b()}};
    for (const Case &c : cases) {
        OpenLoopWorkload fcfsW;
        fcfsW.policy = SchedulerPolicy::FCFS;
        OpenLoopWorkload sarathiW;
        sarathiW.policy = SchedulerPolicy::Sarathi;
        ServingMetrics fcfs = servePoisson(c.kind, c.model, 32.0, fcfsW);
        ServingMetrics sarathi =
            servePoisson(c.kind, c.model, 32.0, sarathiW);
        EXPECT_LT(sarathi.ttft.p95, fcfs.ttft.p95)
            << systemName(c.kind) << " " << c.model.name;
        EXPECT_GE(sarathi.goodput, fcfs.goodput)
            << systemName(c.kind) << " " << c.model.name;
        EXPECT_GE(sarathi.tokensPerSec, fcfs.tokensPerSec)
            << systemName(c.kind) << " " << c.model.name;
    }
}

} // namespace
} // namespace pimba
