/**
 * @file
 * pimba-trace-v1 save/load tests: exact (bit-for-bit) round trips,
 * format pinning, streaming-reader limits, and the loader's located
 * rejections — bad version header, missing declared count, unsorted
 * arrivals, duplicate ids, truncation, malformed rows.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "config/json.h"
#include "serving/trace.h"
#include "serving/trace_io.h"

namespace pimba {
namespace {

/** Write @p body to a fresh file under the gtest temp dir and return
 *  its path. @p name must be unique per test. */
std::string
writeFile(const std::string &name, const std::string &body)
{
    std::string path = ::testing::TempDir() + "pimba_" + name;
    FILE *f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return path;
}

/** Expect that constructing/consuming a reader over @p body throws a
 *  ConfigError whose message contains @p needle, at line @p line. */
void
expectRejected(const std::string &name, const std::string &body,
               const std::string &needle, int line)
{
    std::string path = writeFile(name, body);
    try {
        loadTrace(path);
        FAIL() << "expected ConfigError containing \"" << needle << "\"";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
        EXPECT_EQ(e.line(), line) << e.what();
    }
    std::remove(path.c_str());
}

TEST(TraceIo, RoundTripIsBitExact)
{
    // Arrivals print with 17 significant digits, so every binary64
    // bit survives the text round trip — the property the replay
    // equivalence guarantee rests on.
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.ratePerSec = 7.3;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 17;
    cfg.inputLenMax = 4099;
    cfg.outputLen = 3;
    cfg.outputLenMax = 977;
    cfg.numRequests = 2000;
    cfg.classes.push_back(TraceClass{"a", 1.0,
                                     LengthDistribution::Fixed, 64, 16,
                                     0, 0});
    cfg.classes.push_back(TraceClass{"b", 2.0,
                                     LengthDistribution::Uniform, 256,
                                     32, 512, 64});
    auto trace = generateTrace(cfg);
    std::string path = writeFile("roundtrip.csv", renderTrace(trace));
    auto loaded = loadTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].id, trace[i].id);
        // Bit-exact, not just close:
        EXPECT_EQ(loaded[i].arrival.value(), trace[i].arrival.value());
        EXPECT_EQ(loaded[i].inputLen, trace[i].inputLen);
        EXPECT_EQ(loaded[i].outputLen, trace[i].outputLen);
        EXPECT_EQ(loaded[i].classId, trace[i].classId);
    }
    // And rendering the loaded trace reproduces the file byte-for-byte.
    EXPECT_EQ(renderTrace(loaded), renderTrace(trace));
    std::remove(path.c_str());
}

TEST(TraceIo, RenderedFormatIsPinned)
{
    std::vector<Request> trace(2);
    trace[0] = Request{0, Seconds(0.0), 512, 128};
    trace[1] = Request{1, Seconds(0.5), 256, 64};
    trace[1].classId = 3;
    EXPECT_EQ(renderTrace(trace),
              "# pimba-trace-v1\n"
              "# requests: 2\n"
              "# columns: id,arrival_seconds,input_tokens,output_tokens,"
              "class\n"
              "0,0,512,128,0\n"
              "1,0.5,256,64,3\n");
}

TEST(TraceIo, StreamingReaderHonorsLimitAndReportsHeader)
{
    TraceConfig cfg;
    cfg.numRequests = 50;
    auto trace = generateTrace(cfg);
    std::string path = writeFile("limit.csv", renderTrace(trace));
    TraceFileReader reader(path, 10);
    EXPECT_EQ(reader.declaredRequests(), 50u);
    Request r;
    uint64_t n = 0;
    while (reader.next(r))
        ++n;
    EXPECT_EQ(n, 10u);
    EXPECT_EQ(reader.produced(), 10u);
    EXPECT_FALSE(reader.next(r)); // stays exhausted
    std::remove(path.c_str());
}

TEST(TraceIo, MaterializeTraceLoadsNamedFileWithPrefixLimit)
{
    TraceConfig gen;
    gen.numRequests = 20;
    auto trace = generateTrace(gen);
    std::string path = writeFile("materialize.csv", renderTrace(trace));

    TraceConfig replay;
    replay.file = path;
    replay.numRequests = 0; // all of the file
    EXPECT_EQ(materializeTrace(replay).size(), 20u);
    replay.numRequests = 5; // prefix
    EXPECT_EQ(materializeTrace(replay).size(), 5u);
    std::remove(path.c_str());
}

TEST(TraceIo, OpenArrivalSourcePicksReaderOrGenerator)
{
    TraceConfig gen;
    gen.numRequests = 8;
    auto trace = generateTrace(gen);
    std::string path = writeFile("source.csv", renderTrace(trace));

    TraceConfig replay;
    replay.file = path;
    auto src = openArrivalSource(replay);
    Request r;
    size_t i = 0;
    while (src->next(r)) {
        EXPECT_EQ(r.id, trace[i].id);
        EXPECT_EQ(r.arrival.value(), trace[i].arrival.value());
        ++i;
    }
    EXPECT_EQ(i, trace.size());

    auto genSrc = openArrivalSource(gen);
    i = 0;
    while (genSrc->next(r))
        ++i;
    EXPECT_EQ(i, trace.size());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsALocatedError)
{
    EXPECT_THROW(loadTrace("/nonexistent/pimba-no-such.csv"),
                 ConfigError);
}

TEST(TraceIo, RejectsWrongVersionHeader)
{
    expectRejected("badversion.csv",
                   "# pimba-trace-v9\n# requests: 1\n0,0,1,1,0\n",
                   "pimba-trace-v1", 1);
}

TEST(TraceIo, RejectsMissingRequestsLine)
{
    expectRejected("noreqs.csv", "# pimba-trace-v1\n0,0,1,1,0\n",
                   "requests", 2);
}

TEST(TraceIo, RejectsUnsortedArrivals)
{
    expectRejected("unsorted.csv",
                   "# pimba-trace-v1\n# requests: 2\n"
                   "0,5.0,1,1,0\n1,4.0,1,1,0\n",
                   "non-decreasing", 4);
}

TEST(TraceIo, RejectsNonIncreasingIds)
{
    expectRejected("dupid.csv",
                   "# pimba-trace-v1\n# requests: 2\n"
                   "0,0,1,1,0\n0,1.0,1,1,0\n",
                   "increasing", 4);
}

TEST(TraceIo, RejectsTruncatedFile)
{
    expectRejected("trunc.csv",
                   "# pimba-trace-v1\n# requests: 3\n"
                   "0,0,1,1,0\n1,1.0,1,1,0\n",
                   "truncated", 4);
}

TEST(TraceIo, RejectsExtraRowsBeyondDeclaredCount)
{
    expectRejected("extra.csv",
                   "# pimba-trace-v1\n# requests: 1\n"
                   "0,0,1,1,0\n1,1.0,1,1,0\n",
                   "declared", 4);
}

TEST(TraceIo, RejectsMalformedRows)
{
    const std::string hdr = "# pimba-trace-v1\n# requests: 1\n";
    expectRejected("fields.csv", hdr + "0,0,1,1\n",
                   "5 comma-separated fields", 3);
    expectRejected("badnum.csv", hdr + "x,0,1,1,0\n", "id", 3);
    expectRejected("badarr.csv", hdr + "0,zebra,1,1,0\n", "arrival", 3);
    expectRejected("negarr.csv", hdr + "0,-1.0,1,1,0\n", "arrival", 3);
    expectRejected("zerolen.csv", hdr + "0,0,0,1,0\n", "input", 3);
}

} // namespace
} // namespace pimba
