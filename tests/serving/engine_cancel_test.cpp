/**
 * @file
 * Engine cancellation tests: the session-API cancel() the control
 * plane's deadline timers drive (docs/control-plane.md). Pins the
 * queued-drop and running-eviction paths, the TTFT-met guard, stale
 * timers as no-ops, freed capacity being reusable, and the
 * unsigned-wrap clamps in the cancellation/eviction token accounting —
 * the delivered-token counter must never underflow when a request is
 * cancelled before producing anything.
 */

#include <gtest/gtest.h>

#include "serving/engine.h"
#include "serving/trace.h"

namespace pimba {
namespace {

ServingEngine
makeEngine(EngineConfig cfg = {})
{
    ServingSimulator sim(makeSystem(SystemKind::PIMBA));
    return ServingEngine(sim, mamba2_2p7b(), cfg);
}

Request
makeRequest(uint64_t id, double arrival, uint64_t in, uint64_t out)
{
    Request r;
    r.id = id;
    r.arrival = Seconds(arrival);
    r.inputLen = in;
    r.outputLen = out;
    return r;
}

TEST(EngineCancel, QueuedRequestDropsWithoutWaste)
{
    // maxBatch 1 parks the second request in the waiting queue; a
    // queued cancel is pure bookkeeping — nothing was computed, so
    // nothing is wasted.
    EngineConfig cfg;
    cfg.maxBatch = 1;
    auto engine = makeEngine(cfg);
    engine.begin();
    engine.submit(makeRequest(1, 0.0, 64, 256));
    engine.submit(makeRequest(2, 0.0, 64, 16));
    engine.advanceTo(Seconds(0.05)); // request 1 admitted, 2 queued
    ASSERT_EQ(engine.queueDepth(), 2u); // 1 running + 1 waiting

    EXPECT_TRUE(engine.cancel(2, engine.now(), false));
    EXPECT_EQ(engine.queueDepth(), 1u); // only 1, still running
    engine.drain();
    ServingReport rep = engine.finish();
    EXPECT_EQ(rep.completedRequests, 1u);
    EXPECT_EQ(rep.cancelledRequests, 1u);
    EXPECT_EQ(rep.wastedTokens, 0u);
    EXPECT_EQ(rep.generatedTokens, 256u);
    ASSERT_EQ(rep.completed.size(), 1u);
    EXPECT_EQ(rep.completed[0].req.id, 1u);
}

TEST(EngineCancel, RunningRequestWastesComputeAndUnwindsDelivered)
{
    // Cancel mid-decode: the prompt prefill plus every locally decoded
    // token becomes waste, and the delivered counter unwinds to
    // exactly zero — the clamp regression this file exists for. Before
    // the clamps, an eviction/cancel race on a request with zero
    // generated tokens wrapped the unsigned counter.
    auto engine = makeEngine();
    engine.begin();
    engine.submit(makeRequest(1, 0.0, 128, 512));
    engine.advanceTo(Seconds(0.1)); // prefill done, some tokens out
    ASSERT_TRUE(engine.completedSoFar().empty());

    EXPECT_TRUE(engine.cancel(1, engine.now(), false));
    engine.drain();
    ServingReport rep = engine.finish();
    EXPECT_EQ(rep.completedRequests, 0u);
    EXPECT_EQ(rep.cancelledRequests, 1u);
    EXPECT_EQ(rep.generatedTokens, 0u); // no underflow wrap
    // Waste covers at least the prefilled prompt.
    EXPECT_GE(rep.wastedTokens, 128u);
    EXPECT_EQ(rep.metrics.cancelledRequests, 1u);
    EXPECT_EQ(rep.metrics.wastedTokens, rep.wastedTokens);
}

TEST(EngineCancel, CancelBeforeAnyComputeLeavesCountersAtZero)
{
    // Cancel at the arrival instant, before a single iteration ran:
    // the running-path clamp must cope with prefilled == generated ==
    // 0 (wasted 0, delivered 0) instead of wrapping.
    auto engine = makeEngine();
    engine.begin();
    engine.submit(makeRequest(1, 0.0, 64, 32));
    EXPECT_TRUE(engine.cancel(1, Seconds(0.0), false));
    engine.drain();
    ServingReport rep = engine.finish();
    EXPECT_EQ(rep.cancelledRequests, 1u);
    EXPECT_EQ(rep.completedRequests, 0u);
    EXPECT_EQ(rep.wastedTokens, 0u);
    EXPECT_EQ(rep.generatedTokens, 0u);
}

TEST(EngineCancel, TtftGuardSparesDeliveredRequests)
{
    // onlyIfNoFirstToken is the TTFT-deadline mode: once the first
    // token is out, the timer must be a no-op and the request runs to
    // completion untouched.
    auto engine = makeEngine();
    engine.begin();
    engine.submit(makeRequest(1, 0.0, 64, 32));
    engine.advanceTo(Seconds(0.5)); // far past the first token
    EXPECT_FALSE(engine.cancel(1, engine.now(), true));
    engine.drain();
    ServingReport rep = engine.finish();
    EXPECT_EQ(rep.completedRequests, 1u);
    EXPECT_EQ(rep.cancelledRequests, 0u);
    EXPECT_EQ(rep.wastedTokens, 0u);
    EXPECT_EQ(rep.generatedTokens, 32u);
}

TEST(EngineCancel, StaleTimersAreNoOps)
{
    auto engine = makeEngine();
    engine.begin();
    engine.submit(makeRequest(1, 0.0, 64, 8));
    engine.drain(); // request 1 completed
    EXPECT_FALSE(engine.cancel(1, engine.now(), false)); // completed
    EXPECT_FALSE(engine.cancel(99, engine.now(), false)); // unknown
    ServingReport rep = engine.finish();
    EXPECT_EQ(rep.completedRequests, 1u);
    EXPECT_EQ(rep.cancelledRequests, 0u);
    EXPECT_EQ(rep.generatedTokens, 8u);
}

TEST(EngineCancel, CancelledSlotIsReusable)
{
    // The capacity a cancelled request held — its batch slot and its
    // blocks — must be free for the next arrival, and the books still
    // balance: completed + cancelled == submitted.
    EngineConfig cfg;
    cfg.maxBatch = 1;
    auto engine = makeEngine(cfg);
    engine.begin();
    engine.submit(makeRequest(1, 0.0, 128, 4096));
    engine.submit(makeRequest(2, 0.0, 64, 16));
    engine.advanceTo(Seconds(0.05));
    ASSERT_EQ(engine.queueDepth(), 2u); // 1 running, 2 stuck behind it

    EXPECT_TRUE(engine.cancel(1, engine.now(), false));
    engine.drain();
    ServingReport rep = engine.finish();
    ASSERT_EQ(rep.completed.size(), 1u);
    EXPECT_EQ(rep.completed[0].req.id, 2u);
    EXPECT_EQ(rep.completedRequests + rep.cancelledRequests, 2u);
    EXPECT_EQ(rep.generatedTokens, 16u);
    EXPECT_GE(rep.wastedTokens, 128u); // request 1's dead prefill
}

TEST(EngineCancel, PreloadedCancelClampsAtImportedFirstToken)
{
    // A preloaded (disaggregation-import) request carries generated ==
    // 1 from its prefill replica. Cancelling it before any *local*
    // decode step must treat local work as zero — the `generated - 1`
    // clamp — rather than unwinding tokens this replica never made.
    auto engine = makeEngine();
    engine.begin();
    engine.submitPrefilled(makeRequest(1, 0.0, 64, 32));
    EXPECT_TRUE(engine.cancel(1, Seconds(0.0), false));
    engine.drain();
    ServingReport rep = engine.finish();
    EXPECT_EQ(rep.cancelledRequests, 1u);
    EXPECT_EQ(rep.completedRequests, 0u);
    EXPECT_EQ(rep.wastedTokens, 0u);
    EXPECT_EQ(rep.generatedTokens, 0u);
}

} // namespace
} // namespace pimba
