/**
 * @file
 * Trace-generator tests: seeded determinism, arrival-process statistics
 * (Poisson, fixed, diurnal thinning, MMPP bursts), multi-tenant class
 * mixes, length-distribution bounds, the streaming ArrivalStream's
 * equivalence to the eager generator, and the Kahan arrival-clock drift
 * regression at 10M arrivals.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "serving/trace.h"

namespace pimba {
namespace {

TEST(Trace, SameSeedReproducesIdenticalTrace)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 64;
    cfg.inputLenMax = 512;
    cfg.outputLen = 16;
    cfg.outputLenMax = 128;
    cfg.numRequests = 200;
    cfg.seed = 12345;

    auto a = generateTrace(cfg);
    auto b = generateTrace(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].arrival.value(), b[i].arrival.value());
        EXPECT_EQ(a[i].inputLen, b[i].inputLen);
        EXPECT_EQ(a[i].outputLen, b[i].outputLen);
    }
}

TEST(Trace, DifferentSeedsDiffer)
{
    TraceConfig cfg;
    cfg.numRequests = 50;
    cfg.seed = 1;
    auto a = generateTrace(cfg);
    cfg.seed = 2;
    auto b = generateTrace(cfg);
    bool any_diff = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].arrival != b[i].arrival;
    EXPECT_TRUE(any_diff);
}

TEST(Trace, FixedRateSpacingIsExact)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Fixed;
    cfg.ratePerSec = 4.0;
    cfg.numRequests = 10;
    auto trace = generateTrace(cfg);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_NEAR(trace[i].arrival.value(),
                    static_cast<double>(i) * 0.25,
                    1e-12);
}

TEST(Trace, PoissonMeanInterarrivalMatchesRate)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.ratePerSec = 8.0;
    cfg.numRequests = 4000;
    auto trace = generateTrace(cfg);
    double span = (trace.back().arrival - trace.front().arrival).value();
    double mean_gap = span / static_cast<double>(trace.size() - 1);
    EXPECT_NEAR(mean_gap, 1.0 / cfg.ratePerSec,
                0.1 / cfg.ratePerSec); // within 10% at n = 4000
}

TEST(Trace, ArrivalsSortedAndIdsSequential)
{
    TraceConfig cfg;
    cfg.numRequests = 100;
    auto trace = generateTrace(cfg);
    EXPECT_DOUBLE_EQ(trace.front().arrival.value(), 0.0);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i);
        if (i > 0) {
            EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
        }
    }
}

TEST(Trace, FixedLengthsAreExact)
{
    TraceConfig cfg;
    cfg.lengths = LengthDistribution::Fixed;
    cfg.inputLen = 777;
    cfg.outputLen = 33;
    cfg.numRequests = 20;
    for (const auto &r : generateTrace(cfg)) {
        EXPECT_EQ(r.inputLen, 777u);
        EXPECT_EQ(r.outputLen, 33u);
    }
}

TEST(Trace, UniformLengthsNeverExceedMaxAcrossLfsrStream)
{
    // Pins the sampleLength clamp: sweep a long stretch of the LFSR
    // stream with a small span, where an unclamped rounding of
    // nextUnit() * span would show up as hi + 1. Every value of the
    // span must appear (the clamp must not pinch the distribution) and
    // none may escape [lo, hi].
    TraceConfig cfg;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 10;
    cfg.inputLenMax = 13;
    cfg.outputLen = 5;
    cfg.outputLenMax = 6;
    cfg.numRequests = 20000;
    cfg.seed = 0xC0FFEEu;
    std::set<uint64_t> inputSeen, outputSeen;
    for (const auto &r : generateTrace(cfg)) {
        ASSERT_GE(r.inputLen, 10u);
        ASSERT_LE(r.inputLen, 13u);
        ASSERT_GE(r.outputLen, 5u);
        ASSERT_LE(r.outputLen, 6u);
        inputSeen.insert(r.inputLen);
        outputSeen.insert(r.outputLen);
    }
    EXPECT_EQ(inputSeen.size(), 4u);
    EXPECT_EQ(outputSeen.size(), 2u);
}

TEST(Trace, UniformLengthsStayInBounds)
{
    TraceConfig cfg;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 100;
    cfg.inputLenMax = 200;
    cfg.outputLen = 10;
    cfg.outputLenMax = 40;
    cfg.numRequests = 500;
    bool input_varies = false;
    uint64_t first_input = 0;
    for (const auto &r : generateTrace(cfg)) {
        EXPECT_GE(r.inputLen, 100u);
        EXPECT_LE(r.inputLen, 200u);
        EXPECT_GE(r.outputLen, 10u);
        EXPECT_LE(r.outputLen, 40u);
        if (r.id == 0)
            first_input = r.inputLen;
        else
            input_varies |= r.inputLen != first_input;
    }
    EXPECT_TRUE(input_varies);
}

TEST(Trace, StreamingGeneratorMatchesEagerGenerator)
{
    // generateTrace is documented as "collect the stream": the two
    // paths must agree bit for bit, or replay-scale runs (which use
    // the stream) would diverge from materialized runs.
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 32;
    cfg.inputLenMax = 256;
    cfg.outputLen = 8;
    cfg.outputLenMax = 64;
    cfg.numRequests = 3000;
    cfg.seed = 0xABCD;
    auto eager = generateTrace(cfg);
    ArrivalStream stream(cfg);
    Request r;
    size_t i = 0;
    while (stream.next(r)) {
        ASSERT_LT(i, eager.size());
        EXPECT_EQ(r.id, eager[i].id);
        EXPECT_DOUBLE_EQ(r.arrival.value(), eager[i].arrival.value());
        EXPECT_EQ(r.inputLen, eager[i].inputLen);
        EXPECT_EQ(r.outputLen, eager[i].outputLen);
        EXPECT_EQ(r.classId, eager[i].classId);
        ++i;
    }
    EXPECT_EQ(i, eager.size());
    EXPECT_FALSE(stream.next(r)); // stays exhausted
}

TEST(Trace, TenMillionArrivalsStayMonotoneAndOnMean)
{
    // The Kahan-clock drift regression (ISSUE 9): 10M exponential
    // gaps through the compensated accumulator must stay strictly
    // non-decreasing and land within 0.5% of the analytic mean rate.
    // A naive running double drifts as rounding residue accumulates;
    // the compensated sum holds the tail to ulp-level error.
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.ratePerSec = 1000.0;
    cfg.numRequests = 10'000'000;
    cfg.inputLen = 1;
    cfg.outputLen = 1;
    cfg.seed = 0x5EED9u;
    ArrivalStream stream(cfg);
    Request r;
    double prev = -1.0;
    double last = 0.0;
    uint64_t n = 0;
    while (stream.next(r)) {
        ASSERT_GE(r.arrival.value(), prev) << "request " << r.id;
        prev = r.arrival.value();
        last = r.arrival.value();
        ++n;
    }
    EXPECT_EQ(n, 10'000'000u);
    double meanGap = last / static_cast<double>(n - 1);
    EXPECT_NEAR(meanGap, 1.0 / cfg.ratePerSec,
                0.005 / cfg.ratePerSec); // 0.5% at n = 10M
}

TEST(Trace, DiurnalLongRunMeanMatchesConfiguredRate)
{
    // Thinning must leave the configured mean intact: the sinusoid
    // redistributes arrivals across the period without adding or
    // removing them on average.
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Diurnal;
    cfg.ratePerSec = 50.0;
    cfg.diurnal.period = Seconds(40.0);
    cfg.diurnal.peakToTrough = 4.0;
    cfg.numRequests = 100000;
    auto trace = generateTrace(cfg);
    double span = trace.back().arrival.value();
    double empirical = static_cast<double>(trace.size() - 1) / span;
    EXPECT_NEAR(empirical, cfg.ratePerSec, 0.03 * cfg.ratePerSec);
}

TEST(Trace, DiurnalPeaksCarryMoreArrivalsThanTroughs)
{
    // Bucket arrivals by phase: the rising half-period (sin > 0) must
    // see substantially more arrivals than the falling half. With
    // peak/trough = 4 the half-period ratio is (1 + 2a/pi)/(1 - 2a/pi)
    // with a = 0.6, about 2.0 — require at least 1.5x to stay robust.
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Diurnal;
    cfg.ratePerSec = 50.0;
    cfg.diurnal.period = Seconds(40.0);
    cfg.diurnal.peakToTrough = 4.0;
    cfg.numRequests = 100000;
    uint64_t high = 0, low = 0;
    for (const Request &r : generateTrace(cfg)) {
        double phase = std::fmod(r.arrival.value(),
                                 cfg.diurnal.period.value()) /
                       cfg.diurnal.period.value();
        (phase < 0.5 ? high : low) += 1;
    }
    EXPECT_GT(static_cast<double>(high),
              1.5 * static_cast<double>(low));
}

TEST(Trace, MmppIsBurstierThanPoisson)
{
    // The squared coefficient of variation of inter-arrival gaps is 1
    // for Poisson and > 1 for any 2-state MMPP with distinct rates.
    // With an 8x burst this lands well above 2; require > 1.5.
    auto gapCv2 = [](const std::vector<Request> &trace) {
        double sum = 0.0, sum2 = 0.0;
        size_t n = trace.size() - 1;
        for (size_t i = 1; i < trace.size(); ++i) {
            double g = (trace[i].arrival - trace[i - 1].arrival).value();
            sum += g;
            sum2 += g * g;
        }
        double mean = sum / static_cast<double>(n);
        double var = sum2 / static_cast<double>(n) - mean * mean;
        return var / (mean * mean);
    };
    TraceConfig cfg;
    cfg.ratePerSec = 20.0;
    cfg.numRequests = 50000;
    cfg.arrivals = ArrivalProcess::Poisson;
    double poissonCv2 = gapCv2(generateTrace(cfg));
    cfg.arrivals = ArrivalProcess::Mmpp;
    cfg.mmpp.burstMultiplier = 8.0;
    cfg.mmpp.burstMean = Seconds(2.0);
    cfg.mmpp.idleMean = Seconds(10.0);
    double mmppCv2 = gapCv2(generateTrace(cfg));
    EXPECT_NEAR(poissonCv2, 1.0, 0.2);
    EXPECT_GT(mmppCv2, 1.5);
}

TEST(Trace, ClassMixFollowsWeightsAndPerClassLengths)
{
    TraceConfig cfg;
    cfg.numRequests = 40000;
    cfg.classes.push_back(TraceClass{"interactive", 3.0,
                                     LengthDistribution::Fixed, 64, 16,
                                     0, 0});
    cfg.classes.push_back(TraceClass{"batch", 1.0,
                                     LengthDistribution::Uniform, 512,
                                     128, 1024, 256});
    uint64_t counts[2] = {0, 0};
    for (const Request &r : generateTrace(cfg)) {
        ASSERT_LT(r.classId, 2u);
        ++counts[r.classId];
        if (r.classId == 0) {
            EXPECT_EQ(r.inputLen, 64u);
            EXPECT_EQ(r.outputLen, 16u);
        } else {
            EXPECT_GE(r.inputLen, 512u);
            EXPECT_LE(r.inputLen, 1024u);
            EXPECT_GE(r.outputLen, 128u);
            EXPECT_LE(r.outputLen, 256u);
        }
    }
    double share = static_cast<double>(counts[0]) /
                   static_cast<double>(cfg.numRequests);
    EXPECT_NEAR(share, 0.75, 0.02); // weight 3 of 4
}

TEST(Trace, ClasslessConfigIsByteCompatibleWithPreClassTraces)
{
    // Adding the class machinery must not shift the RNG streams of
    // existing configs: a classless trace and a trace from before the
    // feature must be identical. Pinned against hard-coded values from
    // the pre-class generator.
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.ratePerSec = 2.0;
    cfg.numRequests = 3;
    cfg.seed = 0x5EED0001u;
    auto trace = generateTrace(cfg);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_DOUBLE_EQ(trace[0].arrival.value(), 0.0);
    for (const Request &r : trace) {
        EXPECT_EQ(r.classId, 0u);
        EXPECT_EQ(r.inputLen, 2048u);
        EXPECT_EQ(r.outputLen, 2048u);
    }
}

TEST(Trace, ValidationRejectsBadShapes)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Diurnal;
    cfg.diurnal.peakToTrough = 0.5;
    EXPECT_NE(validateTraceConfig(cfg).find("peakToTrough"),
              std::string::npos);
    cfg = TraceConfig{};
    cfg.arrivals = ArrivalProcess::Mmpp;
    cfg.mmpp.burstMultiplier = 0.0;
    EXPECT_NE(validateTraceConfig(cfg).find("burstMultiplier"),
              std::string::npos);
    cfg = TraceConfig{};
    cfg.classes.push_back(TraceClass{"bad", -1.0,
                                     LengthDistribution::Fixed, 1, 1, 0,
                                     0});
    EXPECT_NE(validateTraceConfig(cfg).find("weight"),
              std::string::npos);
    cfg = TraceConfig{};
    cfg.classes.push_back(TraceClass{"", 1.0,
                                     LengthDistribution::Fixed, 1, 1, 0,
                                     0});
    EXPECT_NE(validateTraceConfig(cfg).find("name"), std::string::npos);
}

} // namespace
} // namespace pimba
