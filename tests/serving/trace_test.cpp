/**
 * @file
 * Trace-generator tests: seeded determinism, arrival-process statistics,
 * and length-distribution bounds.
 */

#include <gtest/gtest.h>

#include <set>

#include "serving/trace.h"

namespace pimba {
namespace {

TEST(Trace, SameSeedReproducesIdenticalTrace)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 64;
    cfg.inputLenMax = 512;
    cfg.outputLen = 16;
    cfg.outputLenMax = 128;
    cfg.numRequests = 200;
    cfg.seed = 12345;

    auto a = generateTrace(cfg);
    auto b = generateTrace(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_DOUBLE_EQ(a[i].arrival.value(), b[i].arrival.value());
        EXPECT_EQ(a[i].inputLen, b[i].inputLen);
        EXPECT_EQ(a[i].outputLen, b[i].outputLen);
    }
}

TEST(Trace, DifferentSeedsDiffer)
{
    TraceConfig cfg;
    cfg.numRequests = 50;
    cfg.seed = 1;
    auto a = generateTrace(cfg);
    cfg.seed = 2;
    auto b = generateTrace(cfg);
    bool any_diff = false;
    for (size_t i = 0; i < a.size(); ++i)
        any_diff |= a[i].arrival != b[i].arrival;
    EXPECT_TRUE(any_diff);
}

TEST(Trace, FixedRateSpacingIsExact)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Fixed;
    cfg.ratePerSec = 4.0;
    cfg.numRequests = 10;
    auto trace = generateTrace(cfg);
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_NEAR(trace[i].arrival.value(),
                    static_cast<double>(i) * 0.25,
                    1e-12);
}

TEST(Trace, PoissonMeanInterarrivalMatchesRate)
{
    TraceConfig cfg;
    cfg.arrivals = ArrivalProcess::Poisson;
    cfg.ratePerSec = 8.0;
    cfg.numRequests = 4000;
    auto trace = generateTrace(cfg);
    double span = (trace.back().arrival - trace.front().arrival).value();
    double mean_gap = span / static_cast<double>(trace.size() - 1);
    EXPECT_NEAR(mean_gap, 1.0 / cfg.ratePerSec,
                0.1 / cfg.ratePerSec); // within 10% at n = 4000
}

TEST(Trace, ArrivalsSortedAndIdsSequential)
{
    TraceConfig cfg;
    cfg.numRequests = 100;
    auto trace = generateTrace(cfg);
    EXPECT_DOUBLE_EQ(trace.front().arrival.value(), 0.0);
    for (size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i);
        if (i > 0) {
            EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
        }
    }
}

TEST(Trace, FixedLengthsAreExact)
{
    TraceConfig cfg;
    cfg.lengths = LengthDistribution::Fixed;
    cfg.inputLen = 777;
    cfg.outputLen = 33;
    cfg.numRequests = 20;
    for (const auto &r : generateTrace(cfg)) {
        EXPECT_EQ(r.inputLen, 777u);
        EXPECT_EQ(r.outputLen, 33u);
    }
}

TEST(Trace, UniformLengthsNeverExceedMaxAcrossLfsrStream)
{
    // Pins the sampleLength clamp: sweep a long stretch of the LFSR
    // stream with a small span, where an unclamped rounding of
    // nextUnit() * span would show up as hi + 1. Every value of the
    // span must appear (the clamp must not pinch the distribution) and
    // none may escape [lo, hi].
    TraceConfig cfg;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 10;
    cfg.inputLenMax = 13;
    cfg.outputLen = 5;
    cfg.outputLenMax = 6;
    cfg.numRequests = 20000;
    cfg.seed = 0xC0FFEEu;
    std::set<uint64_t> inputSeen, outputSeen;
    for (const auto &r : generateTrace(cfg)) {
        ASSERT_GE(r.inputLen, 10u);
        ASSERT_LE(r.inputLen, 13u);
        ASSERT_GE(r.outputLen, 5u);
        ASSERT_LE(r.outputLen, 6u);
        inputSeen.insert(r.inputLen);
        outputSeen.insert(r.outputLen);
    }
    EXPECT_EQ(inputSeen.size(), 4u);
    EXPECT_EQ(outputSeen.size(), 2u);
}

TEST(Trace, UniformLengthsStayInBounds)
{
    TraceConfig cfg;
    cfg.lengths = LengthDistribution::Uniform;
    cfg.inputLen = 100;
    cfg.inputLenMax = 200;
    cfg.outputLen = 10;
    cfg.outputLenMax = 40;
    cfg.numRequests = 500;
    bool input_varies = false;
    uint64_t first_input = 0;
    for (const auto &r : generateTrace(cfg)) {
        EXPECT_GE(r.inputLen, 100u);
        EXPECT_LE(r.inputLen, 200u);
        EXPECT_GE(r.outputLen, 10u);
        EXPECT_LE(r.outputLen, 40u);
        if (r.id == 0)
            first_input = r.inputLen;
        else
            input_varies |= r.inputLen != first_input;
    }
    EXPECT_TRUE(input_varies);
}

} // namespace
} // namespace pimba
