/**
 * @file
 * Execution-mode invariants through the serving engine and the cluster
 * fleet: EngineConfig::executionMode overrides the replica simulator's
 * mode, overlapped runs conserve tokens and finish no later than
 * blocked runs of the same trace, and a mixed-mode fleet (blocked and
 * overlapped replicas behind one router) replays deterministically and
 * conserves tokens end to end.
 */

#include <gtest/gtest.h>

#include "cluster/workload.h"
#include "serving/workload.h"

namespace pimba {
namespace {

uint64_t
outputTokens(const std::vector<Request> &trace)
{
    uint64_t total = 0;
    for (const Request &r : trace)
        total += r.outputLen;
    return total;
}

ServingReport
runMode(ExecutionMode mode, SchedulerPolicy policy = SchedulerPolicy::FCFS)
{
    OpenLoopWorkload w;
    w.numRequests = 48;
    w.policy = policy;
    w.executionMode = mode;
    return servePoissonReport(SystemKind::PIMBA, zamba2_7b(), 16.0, w);
}

TEST(EngineExecutionMode, ReportCarriesTheMode)
{
    EXPECT_EQ(runMode(ExecutionMode::Blocked).executionMode,
              ExecutionMode::Blocked);
    EXPECT_EQ(runMode(ExecutionMode::Overlapped).executionMode,
              ExecutionMode::Overlapped);
}

TEST(EngineExecutionMode, OverlappedConservesTokensAndFinishesSooner)
{
    for (SchedulerPolicy policy : allPolicies()) {
        ServingReport blk = runMode(ExecutionMode::Blocked, policy);
        ServingReport ovl = runMode(ExecutionMode::Overlapped, policy);
        // Same trace, same token production — only the iteration
        // costing changes, so token conservation must hold in both and
        // the overlapped clock can never run ahead of the blocked one.
        EXPECT_EQ(blk.generatedTokens, ovl.generatedTokens)
            << policyName(policy);
        EXPECT_EQ(blk.completed.size(), ovl.completed.size())
            << policyName(policy);
        EXPECT_LE(ovl.makespan, blk.makespan) << policyName(policy);
        EXPECT_LT(ovl.metrics.tpot.p50, blk.metrics.tpot.p50)
            << policyName(policy);
    }
}

TEST(EngineExecutionMode, ConfigOverridesSystemMode)
{
    // The EngineConfig override beats the SystemConfig default in both
    // directions; nullopt inherits the system's mode.
    SystemConfig sys = makeSystem(SystemKind::PIMBA);
    sys.executionMode = ExecutionMode::Overlapped;
    ServingSimulator sim(sys);

    EngineConfig inherit;
    ServingEngine e1(sim, mamba2_2p7b(), inherit);
    e1.begin();
    EXPECT_EQ(e1.simulator().system().executionMode,
              ExecutionMode::Overlapped);

    EngineConfig force;
    force.executionMode = ExecutionMode::Blocked;
    ServingEngine e2(sim, mamba2_2p7b(), force);
    e2.begin();
    EXPECT_EQ(e2.simulator().system().executionMode,
              ExecutionMode::Blocked);
}

TEST(FleetExecutionMode, MixedModeFleetConservesTokens)
{
    auto trace = clusterTrace(24.0, 64);
    Fleet fleet(mamba2_2p7b(), mixedModePimbaFleet(4));
    FleetReport rep = fleet.run(trace);

    ASSERT_EQ(rep.completed.size(), trace.size());
    uint64_t generated = 0;
    for (const ServingReport &r : rep.replicas)
        generated += r.generatedTokens;
    EXPECT_EQ(generated, outputTokens(trace));
    EXPECT_EQ(rep.metrics.generatedTokens, outputTokens(trace));

    // The per-replica reports carry their own modes: first half
    // blocked, second half overlapped.
    ASSERT_EQ(rep.replicas.size(), 4u);
    EXPECT_EQ(rep.replicas[0].executionMode, ExecutionMode::Blocked);
    EXPECT_EQ(rep.replicas[1].executionMode, ExecutionMode::Blocked);
    EXPECT_EQ(rep.replicas[2].executionMode, ExecutionMode::Overlapped);
    EXPECT_EQ(rep.replicas[3].executionMode, ExecutionMode::Overlapped);
}

TEST(FleetExecutionMode, MixedModeFleetReplaysDeterministically)
{
    auto trace = clusterTrace(24.0, 64);
    Fleet fleet(mamba2_2p7b(), mixedModePimbaFleet(4));
    FleetReport a = fleet.run(trace);
    FleetReport b = fleet.run(trace);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
    EXPECT_DOUBLE_EQ(a.metrics.ttft.p95, b.metrics.ttft.p95);
}

TEST(FleetExecutionMode, OverlappedFleetNoSlowerThanBlocked)
{
    auto trace = clusterTrace(24.0, 64);
    FleetReport blk =
        Fleet(mamba2_2p7b(),
              colocatedPimbaFleet(4, ExecutionMode::Blocked))
            .run(trace);
    FleetReport ovl =
        Fleet(mamba2_2p7b(),
              colocatedPimbaFleet(4, ExecutionMode::Overlapped))
            .run(trace);
    EXPECT_EQ(blk.metrics.generatedTokens, ovl.metrics.generatedTokens);
    EXPECT_LE(ovl.metrics.tpot.p95, blk.metrics.tpot.p95);
}

} // namespace
} // namespace pimba
