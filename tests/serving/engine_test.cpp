/**
 * @file
 * Continuous-batching engine tests: token conservation, deterministic
 * replay, latency-accounting invariants, and chunked-prefill counting.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/units.h"
#include "serving/engine.h"
#include "serving/trace.h"

namespace pimba {
namespace {

TraceConfig
smallTrace()
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Poisson;
    tc.ratePerSec = 16.0;
    tc.numRequests = 40;
    tc.lengths = LengthDistribution::Uniform;
    tc.inputLen = 64;
    tc.inputLenMax = 300;
    tc.outputLen = 8;
    tc.outputLenMax = 48;
    tc.seed = 77;
    return tc;
}

ServingEngine
makeEngine(SystemKind kind, const ModelConfig &model,
           EngineConfig cfg = {})
{
    ServingSimulator sim(makeSystem(kind));
    return ServingEngine(sim, model, cfg);
}

TEST(ServingEngine, TokenConservation)
{
    auto trace = generateTrace(smallTrace());
    auto engine = makeEngine(SystemKind::PIMBA, mamba2_2p7b());
    ServingReport rep = engine.run(trace);

    ASSERT_EQ(rep.completed.size(), trace.size());
    uint64_t expected = 0;
    for (const auto &r : trace)
        expected += r.outputLen;
    EXPECT_EQ(rep.generatedTokens, expected);
    EXPECT_EQ(rep.metrics.generatedTokens, expected);

    // Every request completes exactly once.
    std::set<uint64_t> ids;
    for (const auto &c : rep.completed)
        ids.insert(c.req.id);
    EXPECT_EQ(ids.size(), trace.size());
}

TEST(ServingEngine, DeterministicReplay)
{
    auto trace = generateTrace(smallTrace());
    auto a = makeEngine(SystemKind::GPU, mamba2_2p7b()).run(trace);
    auto b = makeEngine(SystemKind::GPU, mamba2_2p7b()).run(trace);

    EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
    EXPECT_EQ(a.iterations, b.iterations);
    ASSERT_EQ(a.completed.size(), b.completed.size());
    for (size_t i = 0; i < a.completed.size(); ++i) {
        EXPECT_EQ(a.completed[i].req.id, b.completed[i].req.id);
        EXPECT_DOUBLE_EQ(a.completed[i].ttft.value(),
                         b.completed[i].ttft.value());
        EXPECT_DOUBLE_EQ(a.completed[i].latency.value(),
                         b.completed[i].latency.value());
    }
}

TEST(ServingEngine, LatencyAccountingInvariants)
{
    auto trace = generateTrace(smallTrace());
    auto rep = makeEngine(SystemKind::GPU_PIM, mamba2_2p7b()).run(trace);
    for (const auto &c : rep.completed) {
        EXPECT_GT(c.ttft, Seconds(0.0));
        EXPECT_GE(c.latency, c.ttft);
        EXPECT_GE(c.tpot, Seconds(0.0));
        EXPECT_LE(c.req.arrival + c.latency,
                  rep.makespan + Seconds(1e-9));
    }
    EXPECT_GT(rep.metrics.tokensPerSec, TokensPerSecond(0.0));
    EXPECT_GE(rep.metrics.ttft.p99, rep.metrics.ttft.p50);
    EXPECT_GE(rep.metrics.latency.max, rep.metrics.latency.p99);
}

TEST(ServingEngine, SingleTokenOutputsHaveZeroTpot)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 100.0;
    tc.numRequests = 5;
    tc.inputLen = 128;
    tc.outputLen = 1;
    auto rep = makeEngine(SystemKind::PIMBA, gla2p7b())
                   .run(generateTrace(tc));
    ASSERT_EQ(rep.completed.size(), 5u);
    for (const auto &c : rep.completed) {
        EXPECT_DOUBLE_EQ(c.tpot.value(), 0.0);
        EXPECT_DOUBLE_EQ(c.latency.value(), c.ttft.value());
    }
}

TEST(ServingEngine, IdleGapsAdvanceTheClock)
{
    // Two requests a minute apart: the engine must jump the idle gap,
    // not spin, and the second request's TTFT must not include it.
    std::vector<Request> trace(2);
    trace[0] = Request{0, Seconds(0.0), 128, 4};
    trace[1] = Request{1, Seconds(60.0), 128, 4};
    auto rep = makeEngine(SystemKind::GPU, mamba2_2p7b()).run(trace);
    ASSERT_EQ(rep.completed.size(), 2u);
    EXPECT_GT(rep.makespan, Seconds(60.0));
    for (const auto &c : rep.completed)
        EXPECT_LT(c.ttft, Seconds(1.0));
}

TEST(ServingEngine, ChunkedPrefillRunsExpectedChunks)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 1000.0;
    tc.numRequests = 6;
    tc.inputLen = 1000; // 2 chunks of 512
    tc.outputLen = 2;
    EngineConfig ec;
    ec.prefillChunk = Tokens(512);
    auto rep = makeEngine(SystemKind::PIMBA, mamba2_2p7b(), ec)
                   .run(generateTrace(tc));
    uint64_t expected =
        6 * ceilDiv<uint64_t>(1000, ec.prefillChunk.value());
    EXPECT_EQ(rep.prefillChunks, expected);
}

TEST(ServingEngine, BatchCapIsRespected)
{
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 1000.0; // everything arrives at once
    tc.numRequests = 32;
    tc.inputLen = 64;
    tc.outputLen = 32;
    EngineConfig ec;
    ec.maxBatch = 4;
    auto rep = makeEngine(SystemKind::GPU, hgrn2_2p7b(), ec)
                   .run(generateTrace(tc));
    EXPECT_EQ(rep.completed.size(), 32u);
    EXPECT_LE(rep.peakBatch, 4);
    EXPECT_EQ(rep.peakBatch, 4); // load is high enough to fill the cap
}

TEST(ServingEngine, QueueingDelayRecordedPerRequest)
{
    // A burst deeper than the batch cap forces later requests to wait
    // for admission; that wait must land in CompletedRequest::queueing
    // and the fleet percentiles.
    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 1000.0;
    tc.numRequests = 16;
    tc.inputLen = 128;
    tc.outputLen = 16;
    EngineConfig ec;
    ec.maxBatch = 4;
    auto rep = makeEngine(SystemKind::GPU, mamba2_2p7b(), ec)
                   .run(generateTrace(tc));
    ASSERT_EQ(rep.completed.size(), 16u);
    bool waited = false;
    for (const auto &c : rep.completed) {
        EXPECT_GE(c.queueing, Seconds(0.0));
        // admission precedes token
        EXPECT_LE(c.queueing, c.ttft + Seconds(1e-12));
        waited |= c.queueing > Seconds(0.0);
    }
    EXPECT_TRUE(waited); // the burst cannot all admit at time zero
    EXPECT_GT(rep.metrics.queueing.max, 0.0);
    EXPECT_GE(rep.metrics.queueing.p95, rep.metrics.queueing.p50);
}

TEST(ServingEngine, PreemptionCountsSurfacePerRequest)
{
    // Tight budget + long outputs: decode growth must evict. Every
    // eviction increments exactly one (later-completing) request's
    // counter, so the per-request counts sum to the report total.
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));
    Bytes weights = sim.memoryUsage(model, 1, 0).weights;
    EngineConfig ec;
    ec.memoryBudget = weights + 3.0 * sim.requestFootprint(model, 320);

    TraceConfig tc;
    tc.arrivals = ArrivalProcess::Fixed;
    tc.ratePerSec = 1000.0;
    tc.numRequests = 10;
    tc.inputLen = 64;
    tc.outputLen = 256;
    auto rep = ServingEngine(sim, model, ec).run(generateTrace(tc));

    ASSERT_EQ(rep.completed.size(), 10u);
    EXPECT_GT(rep.preemptions, 0u);
    uint64_t perRequest = 0;
    for (const auto &c : rep.completed)
        perRequest += c.preemptions;
    EXPECT_EQ(perRequest, rep.preemptions);
    EXPECT_GT(rep.metrics.preemptions.max, 0.0);
}

TEST(ServingEngine, PreloadedVictimBeforeFirstLocalDecodeKeepsCounts)
{
    // Regression: a preloaded (disaggregated) request evicted before
    // its first *local* decode step sits at generated == 1 — only the
    // imported first token, produced and counted by its prefill
    // replica. The eviction must contribute zero recompute debt and
    // must not touch generatedTokens; the old unclamped
    // `generated - 1` arithmetic wrapped the unsigned counters here.
    ModelConfig model = opt2p7b();
    ServingSimulator sim(makeSystem(SystemKind::GPU));

    // Rebuild the engine's own block arithmetic (see begin()) so the
    // pool holds *exactly* both admission pledges: A's one-chunk
    // prefill then demands its full pledge while B's first decode
    // demands one block past its pledge -> B (most recently admitted)
    // is evicted in the very iteration it was admitted.
    const Bytes fixed = sim.requestFootprint(model, 0);
    const Bytes perToken = sim.requestFootprint(model, 1) - fixed;
    EngineConfig ec; // blockTokens 16, prefillChunk 512, FCFS
    BlockMapper mapper = BlockMapper::make(fixed, perToken, ec.blockTokens);

    Request a; // plain request, admitted first (front of the queue)
    a.id = 1;
    a.inputLen = 256; // one prefill chunk, pledge blocksFor(257)
    a.outputLen = 64;
    Request b; // preloaded: arrives in Decode with generated == 1
    b.id = 2;
    b.inputLen = 63; // pledge blocksFor(64); first decode wants a
    b.outputLen = 8; // 65th cached token = one block past the pledge
    ASSERT_EQ(mapper.blocksFor(Tokens(b.inputLen + 2)),
              mapper.blocksFor(Tokens(b.inputLen + 1)) + Blocks(1));

    Blocks pool = mapper.blocksFor(Tokens(a.inputLen + 1)) +
                  mapper.blocksFor(Tokens(b.inputLen + 1));
    ec.memoryBudget =
        sim.weightFootprint(model) +
        (static_cast<double>(pool.value()) + 0.5) * mapper.blockBytes;

    ServingEngine engine(sim, model, ec);
    engine.begin();
    engine.submit(a);
    engine.submitPrefilled(b);
    engine.drain();
    ServingReport rep = engine.finish();

    ASSERT_EQ(rep.completed.size(), 2u);
    EXPECT_GT(rep.preemptions, 0u);
    // Every eviction of B happened at generated == 1: no local decode
    // was ever discarded, so no recompute debt and no token clawback.
    EXPECT_EQ(rep.recomputedTokens, 0u);
    EXPECT_EQ(rep.generatedTokens, a.outputLen + b.outputLen - 1);
    for (const auto &c : rep.completed)
        if (c.req.id == b.id)
            EXPECT_GT(c.preemptions, 0u);

    // The pressured run delivers exactly what a pressure-free run of
    // the same workload delivers (a wrap would corrupt the totals).
    EngineConfig roomy = ec;
    roomy.memoryBudget = Bytes(0.0); // default: the full HBM capacity
    ServingEngine reference(sim, model, roomy);
    reference.begin();
    reference.submit(a);
    reference.submitPrefilled(b);
    reference.drain();
    ServingReport ref = reference.finish();
    EXPECT_EQ(ref.preemptions, 0u);
    EXPECT_EQ(rep.generatedTokens, ref.generatedTokens);
    EXPECT_EQ(rep.completed.size(), ref.completed.size());
}

TEST(ServingEngine, WorksForAllFiveSystems)
{
    TraceConfig tc;
    tc.numRequests = 8;
    tc.ratePerSec = 8.0;
    tc.inputLen = 128;
    tc.outputLen = 16;
    // Zamba2 has both state-update and attention layers, so every
    // system exercises its full op coverage.
    for (SystemKind kind :
         {SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
          SystemKind::PIMBA, SystemKind::NEUPIMS}) {
        auto rep = makeEngine(kind, zamba2_7b()).run(generateTrace(tc));
        EXPECT_EQ(rep.completed.size(), 8u) << systemName(kind);
        EXPECT_GT(rep.metrics.tokensPerSec, TokensPerSecond(0.0))
            << systemName(kind);
    }
}

} // namespace
} // namespace pimba
