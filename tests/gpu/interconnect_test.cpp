/**
 * @file
 * Point-to-point link cost model tests, pinning the zero-byte rule: a
 * transfer that ships nothing costs exactly {0 s, 0 J} — the setup
 * latency is only paid when a payload actually crosses the link.
 */

#include <gtest/gtest.h>

#include "gpu/interconnect.h"

namespace pimba {
namespace {

TEST(Interconnect, ZeroByteTransferIsFree)
{
    for (const LinkConfig &cfg : {nvlinkLink(), infinibandLink()}) {
        LinkModel link(cfg);
        LinkCost cost = link.transfer(0.0);
        EXPECT_EQ(cost.seconds, 0.0) << cfg.name;
        EXPECT_EQ(cost.energyJ, 0.0) << cfg.name;
    }
}

TEST(Interconnect, PositiveTransferPaysSetupPlusBandwidth)
{
    LinkConfig cfg = infinibandLink();
    LinkModel link(cfg);
    const double bytes = 1e6;
    LinkCost cost = link.transfer(bytes);
    EXPECT_DOUBLE_EQ(cost.seconds,
                     cfg.setupLatency +
                         bytes / (cfg.bandwidth * cfg.efficiency));
    EXPECT_DOUBLE_EQ(cost.energyJ, bytes * 8.0 * cfg.energyPerBit);
    // Even a single byte pays the setup: the discontinuity sits at
    // exactly zero, not at "small".
    EXPECT_GT(link.transfer(1.0).seconds, cfg.setupLatency);
}

TEST(Interconnect, CostIsMonotoneInBytes)
{
    LinkModel link{nvlinkLink()};
    double prev_s = -1.0, prev_j = -1.0;
    for (double bytes : {0.0, 1.0, 1e3, 1e6, 1e9}) {
        LinkCost c = link.transfer(bytes);
        EXPECT_GT(c.seconds, prev_s);
        EXPECT_GE(c.energyJ, prev_j);
        prev_s = c.seconds;
        prev_j = c.energyJ;
    }
}

} // namespace
} // namespace pimba
