/**
 * @file
 * Point-to-point link cost model tests, pinning the zero-byte rule: a
 * transfer that ships nothing costs exactly {0 s, 0 J} — the setup
 * latency is only paid when a payload actually crosses the link.
 */

#include <gtest/gtest.h>

#include "gpu/interconnect.h"

namespace pimba {
namespace {

TEST(Interconnect, ZeroByteTransferIsFree)
{
    for (const LinkConfig &cfg : {nvlinkLink(), infinibandLink()}) {
        LinkModel link(cfg);
        LinkCost cost = link.transfer(Bytes(0.0));
        EXPECT_EQ(cost.seconds, Seconds(0.0)) << cfg.name;
        EXPECT_EQ(cost.energyJ, Joules(0.0)) << cfg.name;
    }
}

TEST(Interconnect, PositiveTransferPaysSetupPlusBandwidth)
{
    LinkConfig cfg = infinibandLink();
    LinkModel link(cfg);
    const Bytes bytes(1e6);
    LinkCost cost = link.transfer(bytes);
    EXPECT_DOUBLE_EQ(cost.seconds.value(),
                     cfg.setupLatency.value() +
                         bytes.value() /
                             (cfg.bandwidth.value() * cfg.efficiency));
    EXPECT_DOUBLE_EQ(cost.energyJ.value(),
                     bytes.value() * 8.0 * cfg.energyPerBit);
    // Even a single byte pays the setup: the discontinuity sits at
    // exactly zero, not at "small".
    EXPECT_GT(link.transfer(Bytes(1.0)).seconds, cfg.setupLatency);
}

TEST(Interconnect, CostIsMonotoneInBytes)
{
    LinkModel link{nvlinkLink()};
    double prev_s = -1.0, prev_j = -1.0;
    for (double bytes : {0.0, 1.0, 1e3, 1e6, 1e9}) {
        LinkCost c = link.transfer(Bytes(bytes));
        EXPECT_GT(c.seconds.value(), prev_s);
        EXPECT_GE(c.energyJ.value(), prev_j);
        prev_s = c.seconds.value();
        prev_j = c.energyJ.value();
    }
}

} // namespace
} // namespace pimba
