/**
 * @file
 * Tests of the GPU roofline kernel model and NVLink collectives.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_kernels.h"

namespace pimba {
namespace {

TEST(GpuKernels, MemoryBoundKernel)
{
    GpuKernelModel gpu(a100Config());
    double bytes = 1e9;
    auto cost = gpu.memBound(bytes);
    double expect = bytes / (2.039e12 * 0.8) + 5e-6;
    EXPECT_NEAR(cost.seconds.value(), expect, 1e-9);
}

TEST(GpuKernels, ComputeBoundKernel)
{
    GpuKernelModel gpu(a100Config());
    // Huge flops, negligible bytes.
    auto cost = gpu.kernel(1e15, 1.0);
    double expect = 1e15 / (312e12 * 0.75) + 5e-6;
    EXPECT_NEAR(cost.seconds.value(), expect, 1e-6);
}

TEST(GpuKernels, RooflineTakesMax)
{
    GpuKernelModel gpu(a100Config());
    double flops = 1e12, bytes = 1e9;
    auto cost = gpu.kernel(flops, bytes);
    double ct = flops / (312e12 * 0.75);
    double mt = bytes / (2.039e12 * 0.8);
    EXPECT_NEAR(cost.seconds.value(), std::max(ct, mt) + 5e-6, 1e-9);
}

TEST(GpuKernels, GemmSmallBatchIsMemoryBound)
{
    // Decode GEMMs at small batch stream weights: memory bound
    // (the premise of Figs. 1(b) and 3).
    GpuKernelModel gpu(a100Config());
    double m = 32, n = 2560, k = 2560;
    auto cost = gpu.gemm(m, n, k);
    double weight_time = n * k * 2.0 / (2.039e12 * 0.8);
    EXPECT_NEAR(cost.seconds.value(), weight_time + 5e-6,
                weight_time * 0.1);
}

TEST(GpuKernels, GemmLargeBatchIsComputeBound)
{
    GpuKernelModel gpu(a100Config());
    double m = 8192, n = 8192, k = 8192;
    auto cost = gpu.gemm(m, n, k);
    double flops_time = 2.0 * m * n * k / (312e12 * 0.75);
    EXPECT_NEAR(cost.seconds.value(), flops_time + 5e-6,
                flops_time * 0.2);
}

TEST(GpuKernels, AllReduceSingleGpuIsFree)
{
    GpuKernelModel gpu(a100Config());
    auto cost = gpu.allReduce(1e9, 1);
    EXPECT_EQ(cost.seconds, Seconds(0.0));
    EXPECT_EQ(cost.energyJ, Joules(0.0));
}

TEST(GpuKernels, AllReduceRingFactor)
{
    GpuKernelModel gpu(a100Config());
    double bytes = 1e9;
    auto cost8 = gpu.allReduce(bytes, 8);
    double expect = bytes * 2.0 * 7.0 / 8.0 / 600e9 + 5e-6;
    EXPECT_NEAR(cost8.seconds.value(), expect, 1e-9);
    // More GPUs -> more data moved per GPU.
    auto cost2 = gpu.allReduce(bytes, 2);
    EXPECT_LT(cost2.seconds, cost8.seconds);
}

TEST(GpuKernels, H100FasterThanA100)
{
    GpuKernelModel a100(a100Config());
    GpuKernelModel h100(h100Config());
    EXPECT_LT(h100.memBound(1e9).seconds, a100.memBound(1e9).seconds);
    EXPECT_LT(h100.kernel(1e14, 1).seconds, a100.kernel(1e14, 1).seconds);
}

TEST(GpuKernels, RidgeIntensity)
{
    GpuKernelModel gpu(a100Config());
    // A100: ~143 flops/byte with efficiency factors applied.
    EXPECT_NEAR(gpu.ridgeIntensity(), 312e12 * 0.75 / (2.039e12 * 0.8),
                1e-6);
    EXPECT_GT(gpu.ridgeIntensity(), 100.0);
}

TEST(GpuKernels, EnergyScalesWithWork)
{
    GpuKernelModel gpu(a100Config());
    auto a = gpu.kernel(1e12, 1e9);
    auto b = gpu.kernel(2e12, 2e9);
    EXPECT_NEAR(b.energyJ / a.energyJ, 2.0, 1e-9);
}

} // namespace
} // namespace pimba
