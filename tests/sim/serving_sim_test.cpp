/**
 * @file
 * System-level tests: the serving simulator must reproduce the paper's
 * qualitative results (Figs. 3, 12-15) as invariants.
 */

#include <gtest/gtest.h>

#include "sim/serving_sim.h"

namespace pimba {
namespace {

ServingSimulator
sim(SystemKind kind, int n_gpus = 1)
{
    return ServingSimulator(makeSystem(kind, n_gpus));
}

TEST(ServingSim, StateUpdateDominatesGpuAtLargeBatch)
{
    // Fig. 3: RetNet batch 128 spends ~74% of latency in state updates.
    auto step = sim(SystemKind::GPU).generationStep(retnet2p7b(), 128, 1);
    double frac = step.latency.fraction("StateUpdate");
    EXPECT_GT(frac, 0.60);
    EXPECT_LT(frac, 0.85);
}

TEST(ServingSim, StateUpdateFractionGrowsWithBatch)
{
    auto s32 = sim(SystemKind::GPU).generationStep(retnet2p7b(), 32, 1);
    auto s128 = sim(SystemKind::GPU).generationStep(retnet2p7b(), 128, 1);
    EXPECT_GT(s128.latency.fraction("StateUpdate"),
              s32.latency.fraction("StateUpdate"));
}

TEST(ServingSim, PimbaOutperformsAllBaselines)
{
    // Fig. 12, per cell: Pimba >= GPU+PIM, GPU+Q, GPU.
    for (const auto &model :
         {retnet2p7b(), mamba2_2p7b(), zamba2_7b()}) {
        double gpu = sim(SystemKind::GPU)
                         .generationThroughput(model, 128, 2048, 2048).value();
        double gpuq = sim(SystemKind::GPU_Q)
                          .generationThroughput(model, 128, 2048, 2048).value();
        double gpupim = sim(SystemKind::GPU_PIM)
                            .generationThroughput(model, 128, 2048, 2048).value();
        double pimba = sim(SystemKind::PIMBA)
                           .generationThroughput(model, 128, 2048, 2048).value();
        EXPECT_GT(pimba, gpupim) << model.name;
        EXPECT_GT(pimba, gpuq) << model.name;
        EXPECT_GT(gpupim, gpu) << model.name;
        EXPECT_GT(gpuq, gpu) << model.name;
    }
}

TEST(ServingSim, PimbaSpeedupInPaperRange)
{
    // Average gains: ~1.9x over GPU, ~1.4x over GPU+PIM (Section 6.2);
    // individual cells range up to 4.1x.
    double gpu = sim(SystemKind::GPU)
                     .generationThroughput(retnet2p7b(), 128, 2048, 2048).value();
    double pimba = sim(SystemKind::PIMBA)
                       .generationThroughput(retnet2p7b(), 128, 2048,
                                             2048).value();
    EXPECT_GT(pimba / gpu, 1.5);
    EXPECT_LT(pimba / gpu, 4.5);
}

TEST(ServingSim, StateUpdateLatencyReduction)
{
    // Fig. 13: Pimba cuts state-update latency by ~an order of
    // magnitude vs GPU and by several x vs GPU+PIM.
    ModelConfig m = scaleModel(retnet2p7b(), 70e9);
    auto gpu = sim(SystemKind::GPU, 8).generationStep(m, 128, 3072);
    auto gpupim = sim(SystemKind::GPU_PIM, 8).generationStep(m, 128,
                                                             3072);
    auto pimba = sim(SystemKind::PIMBA, 8).generationStep(m, 128, 3072);
    double su_gpu = gpu.latency.get("StateUpdate");
    double su_gpupim = gpupim.latency.get("StateUpdate");
    double su_pimba = pimba.latency.get("StateUpdate");
    EXPECT_GT(su_gpu / su_pimba, 6.0);
    EXPECT_LT(su_gpu / su_pimba, 20.0);
    EXPECT_GT(su_gpupim / su_pimba, 3.0);
    EXPECT_LT(su_gpupim / su_pimba, 10.0);
}

TEST(ServingSim, AttentionLatencyReduction)
{
    // Fig. 13 (OPT): attention gains are smaller than state-update
    // gains (~6.3x vs GPU, ~2.1x vs GPU+PIM).
    ModelConfig m = scaleModel(opt7b(), 70e9);
    auto gpu = sim(SystemKind::GPU, 8).generationStep(m, 128, 3072);
    auto gpupim = sim(SystemKind::GPU_PIM, 8).generationStep(m, 128,
                                                             3072);
    auto pimba = sim(SystemKind::PIMBA, 8).generationStep(m, 128, 3072);
    double at_gpu = gpu.latency.get("Attention");
    double at_gpupim = gpupim.latency.get("Attention");
    double at_pimba = pimba.latency.get("Attention");
    EXPECT_GT(at_gpu / at_pimba, 3.0);
    EXPECT_LT(at_gpu / at_pimba, 10.0);
    EXPECT_GT(at_gpupim / at_pimba, 1.4);
    EXPECT_LT(at_gpupim / at_pimba, 3.0);
}

TEST(ServingSim, GemmStaysOnGpu)
{
    // Offloading must not change the GEMM time (it stays on the GPU).
    ModelConfig m = mamba2_2p7b();
    auto gpu = sim(SystemKind::GPU).generationStep(m, 64, 2048);
    auto pimba = sim(SystemKind::PIMBA).generationStep(m, 64, 2048);
    EXPECT_NEAR(pimba.latency.get("GEMM"), gpu.latency.get("GEMM"),
                1e-9);
}

TEST(ServingSim, EnergyAdvantage)
{
    // Fig. 14: Pimba ~2.2x lower energy than GPU, ~1.3x vs GPU+PIM.
    ModelConfig m = scaleModel(retnet2p7b(), 70e9);
    auto gpu = sim(SystemKind::GPU, 8).generationStep(m, 128, 3072);
    auto gpupim = sim(SystemKind::GPU_PIM, 8).generationStep(m, 128,
                                                             3072);
    auto pimba = sim(SystemKind::PIMBA, 8).generationStep(m, 128, 3072);
    EXPECT_GT(gpu.energy.total() / pimba.energy.total(), 1.4);
    EXPECT_GT(gpupim.energy.total() / pimba.energy.total(), 1.05);
}

TEST(ServingSim, SuLlmThroughputIndependentOfSeqLen)
{
    // Post-transformers have constant per-token cost (Section 2.2).
    auto a = sim(SystemKind::GPU).generationStep(mamba2_2p7b(), 64, 128);
    auto b = sim(SystemKind::GPU).generationStep(mamba2_2p7b(), 64,
                                                 8192);
    EXPECT_NEAR(a.seconds.value(), b.seconds.value(),
                a.seconds.value() * 1e-9);
}

TEST(ServingSim, TransformerLatencyGrowsWithSeqLen)
{
    auto a = sim(SystemKind::GPU).generationStep(opt7b(), 64, 1024);
    auto b = sim(SystemKind::GPU).generationStep(opt7b(), 64, 4096);
    EXPECT_GT(b.seconds, a.seconds * 1.5);
}

TEST(ServingSim, MemoryUsagePimbaBelowNeupims)
{
    // Fig. 15: MX8 state + KV vs fp16 halves the variable footprint.
    ModelConfig m = scaleModel(zamba2_7b(), 70e9);
    auto pimba = sim(SystemKind::PIMBA, 8).memoryUsage(m, 128, 2048);
    auto neupims = sim(SystemKind::NEUPIMS, 8).memoryUsage(m, 128, 2048);
    EXPECT_LT(pimba.total(), neupims.total());
    EXPECT_NEAR(pimba.state.value() * 2.0, neupims.state.value(),
                neupims.state.value() * 0.1);
    EXPECT_DOUBLE_EQ(pimba.weights.value(), neupims.weights.value());
}

TEST(ServingSim, NeupimsRunsStateUpdateOnGpu)
{
    SystemConfig cfg = makeSystem(SystemKind::NEUPIMS);
    EXPECT_FALSE(cfg.stateUpdateOnPim());
    EXPECT_TRUE(cfg.attentionOnPim());
    // So Pimba beats it on SU-heavy hybrid workloads.
    ModelConfig m = zamba2_7b();
    auto pimba = sim(SystemKind::PIMBA).generationStep(m, 128, 1024);
    auto neupims = sim(SystemKind::NEUPIMS).generationStep(m, 128, 1024);
    EXPECT_LT(pimba.seconds, neupims.seconds);
}

TEST(ServingSim, H100TrendsMatchA100)
{
    // Fig. 16: the ordering carries over to the H100 platform.
    SystemConfig pimba =
        makeSystem(SystemKind::PIMBA, 1, h100Config(), hbm3Config());
    SystemConfig gpu =
        makeSystem(SystemKind::GPU, 1, h100Config(), hbm3Config());
    double tp = ServingSimulator(pimba).generationThroughput(
        mamba2_2p7b(), 128, 2048, 2048).value();
    double tg = ServingSimulator(gpu).generationThroughput(
        mamba2_2p7b(), 128, 2048, 2048).value();
    EXPECT_GT(tp / tg, 1.2);
}

TEST(ServingSim, AveragedStepIsMidpoint)
{
    // The decode window covers positions [input, input + output), whose
    // mean is input + (output - 1) / 2 — NOT input + output / 2 (the
    // seed's off-by-half, which ceiled the mean and so overcharged
    // every even-length window by half a position of KV traffic; the
    // fix floors it instead, and is exact for odd windows).
    ServingSimulator s = sim(SystemKind::GPU);
    auto avg = s.averagedStep(opt7b(), 32, 2048, 2048);
    auto mid = s.generationStep(opt7b(), 32, 3071);
    EXPECT_DOUBLE_EQ(avg.seconds.value(), mid.seconds.value());
    // A one-token window is exactly the step at the input position.
    auto one = s.averagedStep(opt7b(), 32, 2048, 1);
    auto at = s.generationStep(opt7b(), 32, 2048);
    EXPECT_DOUBLE_EQ(one.seconds.value(), at.seconds.value());
}

TEST(ServingSim, PrefillStepUsesChunkMeanPosition)
{
    // Token i of a prefill chunk attends a cache of length seq_pos + i,
    // so the chunk midpoint is seq_pos + (tokens - 1) / 2. The seed's
    // seq_pos + tokens / 2 biased every chunk half a token deep.
    ServingSimulator s = sim(SystemKind::GPU);
    auto chunk = s.prefillStep(opt7b(), 512, 1024);
    auto mid = s.generationStep(opt7b(), 512, 1024 + (512 - 1) / 2);
    EXPECT_DOUBLE_EQ(chunk.seconds.value(), mid.seconds.value());
    // A 2-token chunk at position p averages p and p + 1 — it must not
    // round up to p + 1 (the seed behavior).
    auto two = s.prefillStep(opt7b(), 2, 1000);
    auto at = s.generationStep(opt7b(), 2, 1000);
    EXPECT_DOUBLE_EQ(two.seconds.value(), at.seconds.value());
}

TEST(ServingSim, GpuAttentionChargesKvAppendWrite)
{
    // The non-PIM attention path must pay the per-step append of the
    // new token's K and V, not just the cache read: at cache length 0
    // there is nothing to read, but the write (and its latency +
    // "Attention (I/O)" energy) remains.
    for (SystemKind kind : {SystemKind::GPU, SystemKind::GPU_Q}) {
        SystemConfig cfg = makeSystem(kind);
        auto step = ServingSimulator(cfg).generationStep(opt7b(), 8, 0);
        double io = step.energy.get("Attention (I/O)");
        EXPECT_GT(io, 0.0) << systemName(kind);
        // Exactly the K+V append bytes of the batch, every layer.
        ModelConfig m = opt7b();
        double write_bytes = static_cast<double>(m.attentionLayers()) *
                             8.0 * m.attnHeads * 2.0 * m.attnDimHead *
                             bitsPerValue(cfg.kvFormat()) / 8.0;
        EXPECT_NEAR(io, write_bytes * 8.0 * cfg.gpu.dramEnergyPerBit,
                    io * 1e-12)
            << systemName(kind);
        EXPECT_GT(step.latency.get("Attention"), 0.0) << systemName(kind);
    }
}

TEST(ServingSim, GpuStateUpdateChargesReadAndWrite)
{
    // S = d (.) S + k v^T re-writes the whole state every step: the
    // state I/O energy must cover (at least) one full read plus one
    // full write of the state at the system's storage width.
    SystemConfig cfg = makeSystem(SystemKind::GPU);
    ModelConfig m = mamba2_2p7b();
    auto step = ServingSimulator(cfg).generationStep(m, 16, 128);
    double rw_bytes =
        2.0 * 16.0 * m.stateBytes(bitsPerValue(cfg.stateFormat()) / 8.0);
    EXPECT_GE(step.energy.get("State update (I/O)"),
              rw_bytes * 8.0 * cfg.gpu.dramEnergyPerBit);
}

TEST(ServingSim, BreakdownKeysMatchFigureLegends)
{
    auto step = sim(SystemKind::GPU).generationStep(zamba2_7b(), 32,
                                                    2048);
    for (const char *key : {"StateUpdate", "Attention", "Discretization",
                            "CausalConv", "GEMM", "Others"})
        EXPECT_GT(step.latency.get(key), 0.0) << key;
}

TEST(ServingSim, SystemNames)
{
    EXPECT_EQ(systemName(SystemKind::GPU), "GPU");
    EXPECT_EQ(systemName(SystemKind::GPU_Q), "GPU+Q");
    EXPECT_EQ(systemName(SystemKind::GPU_PIM), "GPU+PIM");
    EXPECT_EQ(systemName(SystemKind::PIMBA), "Pimba");
    EXPECT_EQ(systemName(SystemKind::NEUPIMS), "NeuPIMs");
}

} // namespace
} // namespace pimba
