/**
 * @file
 * Execution-mode invariants of the step simulator. Overlapped mode
 * (the NeuPIMs-style two-sub-batch GPU<->PIM pipeline of Figure 15)
 * runs exactly the same kernels as blocked mode, so:
 *
 *  - energy is identical to blocked, per category and in total;
 *  - latency is never worse than blocked for any system/model pair,
 *    and strictly better whenever a PIM phase exists to hide
 *    (PIM attention, or PIM state update on an SU model);
 *  - GPU-only systems and single-token batches degrade to blocked;
 *  - the gpu/pim/sync phase decomposition always sums to the blocked
 *    latency, in both modes.
 *
 * Plus the pinned Figure 15 claim: on the PIM-attention systems,
 * overlapped per-token latency sits strictly below blocked at equal
 * reported energy.
 */

#include <gtest/gtest.h>

#include "sim/serving_sim.h"

namespace pimba {
namespace {

const std::vector<SystemKind> kAllSystems = {
    SystemKind::GPU, SystemKind::GPU_Q, SystemKind::GPU_PIM,
    SystemKind::PIMBA, SystemKind::NEUPIMS};

ServingSimulator
modeSim(SystemKind kind, ExecutionMode mode, int n_gpus = 1)
{
    SystemConfig cfg = makeSystem(kind, n_gpus);
    cfg.executionMode = mode;
    return ServingSimulator(cfg);
}

std::vector<ModelConfig>
testMatrix()
{
    return {mamba2_2p7b(), opt2p7b(), zamba2_7b()};
}

TEST(ExecutionMode, Names)
{
    EXPECT_EQ(executionModeName(ExecutionMode::Blocked), "blocked");
    EXPECT_EQ(executionModeName(ExecutionMode::Overlapped), "overlapped");
}

TEST(ExecutionMode, EnergyIdenticalToBlocked)
{
    for (SystemKind kind : kAllSystems) {
        for (const ModelConfig &m : testMatrix()) {
            auto blk = modeSim(kind, ExecutionMode::Blocked)
                           .generationStep(m, 32, 2048);
            auto ovl = modeSim(kind, ExecutionMode::Overlapped)
                           .generationStep(m, 32, 2048);
            EXPECT_DOUBLE_EQ(blk.energy.total(), ovl.energy.total())
                << systemName(kind) << " " << m.name;
            for (const std::string &key : blk.energy.keys())
                EXPECT_DOUBLE_EQ(blk.energy.get(key),
                                 ovl.energy.get(key))
                    << systemName(kind) << " " << m.name << " " << key;
        }
    }
}

TEST(ExecutionMode, LatencyNeverWorseThanBlocked)
{
    for (SystemKind kind : kAllSystems) {
        for (const ModelConfig &m : testMatrix()) {
            for (int batch : {1, 2, 32, 128}) {
                auto blk = modeSim(kind, ExecutionMode::Blocked)
                               .generationStep(m, batch, 2048);
                auto ovl = modeSim(kind, ExecutionMode::Overlapped)
                               .generationStep(m, batch, 2048);
                EXPECT_LE(ovl.seconds, blk.seconds * (1.0 + 1e-12))
                    << systemName(kind) << " " << m.name << " b="
                    << batch;
            }
        }
    }
}

TEST(ExecutionMode, StrictlyFasterWhenPimAttentionOn)
{
    // OPT and Zamba2 have attention layers; on the PIM-attention
    // systems those phases overlap the other sub-batch's GEMMs.
    for (SystemKind kind : {SystemKind::GPU_PIM, SystemKind::PIMBA,
                            SystemKind::NEUPIMS}) {
        ASSERT_TRUE(makeSystem(kind).attentionOnPim());
        for (const ModelConfig &m : {opt2p7b(), zamba2_7b()}) {
            auto blk = modeSim(kind, ExecutionMode::Blocked)
                           .generationStep(m, 32, 2048);
            auto ovl = modeSim(kind, ExecutionMode::Overlapped)
                           .generationStep(m, 32, 2048);
            EXPECT_LT(ovl.seconds, blk.seconds)
                << systemName(kind) << " " << m.name;
        }
    }
}

TEST(ExecutionMode, StrictlyFasterWhenPimStateUpdateOn)
{
    for (SystemKind kind : {SystemKind::GPU_PIM, SystemKind::PIMBA}) {
        ASSERT_TRUE(makeSystem(kind).stateUpdateOnPim());
        auto blk = modeSim(kind, ExecutionMode::Blocked)
                       .generationStep(mamba2_2p7b(), 32, 2048);
        auto ovl = modeSim(kind, ExecutionMode::Overlapped)
                       .generationStep(mamba2_2p7b(), 32, 2048);
        EXPECT_LT(ovl.seconds, blk.seconds) << systemName(kind);
    }
}

TEST(ExecutionMode, GpuOnlySystemsUnaffected)
{
    for (SystemKind kind : {SystemKind::GPU, SystemKind::GPU_Q}) {
        for (const ModelConfig &m : testMatrix()) {
            auto blk = modeSim(kind, ExecutionMode::Blocked)
                           .generationStep(m, 32, 2048);
            auto ovl = modeSim(kind, ExecutionMode::Overlapped)
                           .generationStep(m, 32, 2048);
            EXPECT_DOUBLE_EQ(ovl.seconds.value(), blk.seconds.value())
                << systemName(kind) << " " << m.name;
        }
    }
}

TEST(ExecutionMode, SingleTokenBatchFallsBackToBlocked)
{
    // One token cannot split into two sub-batches: no pipeline.
    auto blk = modeSim(SystemKind::PIMBA, ExecutionMode::Blocked)
                   .generationStep(zamba2_7b(), 1, 2048);
    auto ovl = modeSim(SystemKind::PIMBA, ExecutionMode::Overlapped)
                   .generationStep(zamba2_7b(), 1, 2048);
    EXPECT_DOUBLE_EQ(ovl.seconds.value(), blk.seconds.value());
}

TEST(ExecutionMode, PhaseDecompositionSumsToBlocked)
{
    for (SystemKind kind : kAllSystems) {
        for (const ModelConfig &m : testMatrix()) {
            for (ExecutionMode mode : {ExecutionMode::Blocked,
                                       ExecutionMode::Overlapped}) {
                auto step = modeSim(kind, mode).generationStep(m, 32,
                                                               2048);
                EXPECT_NEAR(step.blockedSeconds().value(),
                            (step.gpuSeconds + step.pimSeconds +
                             step.syncSeconds)
                                .value(),
                            step.blockedSeconds().value() * 1e-12);
                double want = mode == ExecutionMode::Overlapped &&
                                      step.pimSeconds > Seconds(0.0)
                                  ? step.overlappedSeconds().value()
                                  : step.blockedSeconds().value();
                EXPECT_NEAR(step.seconds.value(), want, want * 1e-9)
                    << systemName(kind) << " " << m.name << " "
                    << executionModeName(mode);
            }
        }
    }
}

TEST(ExecutionMode, Fig15OverlappedBeatsBlockedAtEqualEnergy)
{
    // The pinned bench_fig15_neupims claim: on a PIM-attention system
    // serving Zamba2-70B at batch 128, overlapped mode shows lower
    // per-token latency than blocked at identical reported energy.
    ModelConfig model = scaleModel(zamba2_7b(), 70e9);
    for (SystemKind kind : {SystemKind::NEUPIMS, SystemKind::PIMBA}) {
        auto blk = modeSim(kind, ExecutionMode::Blocked, 8)
                       .generationStep(model, 128, 1024 + 512);
        auto ovl = modeSim(kind, ExecutionMode::Overlapped, 8)
                       .generationStep(model, 128, 1024 + 512);
        EXPECT_LT(ovl.seconds, blk.seconds) << systemName(kind);
        EXPECT_DOUBLE_EQ(ovl.energy.total(), blk.energy.total())
            << systemName(kind);
    }
}

TEST(ExecutionMode, SetExecutionModeSwitchesCosting)
{
    ServingSimulator s(makeSystem(SystemKind::PIMBA));
    Seconds blocked = s.generationStep(zamba2_7b(), 32, 2048).seconds;
    s.setExecutionMode(ExecutionMode::Overlapped);
    EXPECT_EQ(s.system().executionMode, ExecutionMode::Overlapped);
    Seconds overlapped = s.generationStep(zamba2_7b(), 32, 2048).seconds;
    EXPECT_LT(overlapped, blocked);
    s.setExecutionMode(ExecutionMode::Blocked);
    EXPECT_DOUBLE_EQ(s.generationStep(zamba2_7b(), 32, 2048).seconds.value(),
                     blocked.value());
}

} // namespace
} // namespace pimba
